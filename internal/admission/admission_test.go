package admission

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestAdmitWait exercises the blocking admission mode used by async
// job items: a drained bucket makes AdmitWait block until refill (real
// clock, tiny amounts), and a canceled context unblocks it with the
// context's error.
func TestAdmitWait(t *testing.T) {
	c := New(Config{Rate: 50, Burst: 1, Metrics: metrics.NewRegistry()})
	if err := c.AdmitWait(context.Background(), "bg", 1); err != nil {
		t.Fatalf("first AdmitWait: %v", err)
	}
	// Bucket drained: the next token arrives in ~20ms.
	start := time.Now()
	if err := c.AdmitWait(context.Background(), "bg", 1); err != nil {
		t.Fatalf("second AdmitWait: %v", err)
	}
	if waited := time.Since(start); waited < 5*time.Millisecond {
		t.Fatalf("AdmitWait returned after %v; expected to block for the refill", waited)
	}

	ctx, cancel := context.WithCancel(context.Background())
	slow := New(Config{Rate: 0.001, Burst: 1, Metrics: metrics.NewRegistry()})
	if err := slow.AdmitWait(ctx, "bg", 1); err != nil {
		t.Fatalf("drain AdmitWait: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- slow.AdmitWait(ctx, "bg", 1) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("canceled AdmitWait: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AdmitWait did not honor cancellation")
	}

	// nil controller admits without blocking.
	var nilC *Controller
	if err := nilC.AdmitWait(context.Background(), "bg", 1); err != nil {
		t.Fatalf("nil AdmitWait: %v", err)
	}
}

// fakeClock is a manually advanced clock for deterministic bucket
// refill tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestCostModel(t *testing.T) {
	cases := []struct {
		instructions, workloads int
		want                    float64
	}{
		{0, 0, 1},                           // defaults: one workload at default fidelity
		{400_000, 1, 1},                     // the unit
		{400_000, 29, 29},                   // a full default-fidelity report
		{800_000, 1, 2},                     // linear in instructions
		{5_000_000, 4, 50},                  // linear in both
		{2000, 1, 1},                        // floor: nothing is free
		{DefaultCostInstructions, 2, 2},     // workload scaling alone
		{2 * DefaultCostInstructions, 0, 2}, // workloads < 1 clamps to 1
	}
	for _, tc := range cases {
		if got := Cost(tc.instructions, tc.workloads); got != tc.want {
			t.Errorf("Cost(%d, %d) = %v, want %v", tc.instructions, tc.workloads, got, tc.want)
		}
	}
}

func TestBucketDrainAndRefill(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Rate: 1, Burst: 3, Now: clk.Now})

	// A fresh client starts with a full bucket: Burst admissions pass.
	for i := 0; i < 3; i++ {
		if d := c.Admit("alice", 1); !d.OK {
			t.Fatalf("admission %d rejected: %+v", i, d)
		}
	}
	d := c.Admit("alice", 1)
	if d.OK {
		t.Fatal("4th admission within burst passed, want rejection")
	}
	if d.Reason != ReasonRateLimited {
		t.Errorf("reason = %q, want %q", d.Reason, ReasonRateLimited)
	}
	// Empty bucket, rate 1/s, cost 1: retry in ~1s.
	if d.RetryAfter <= 0 || d.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %v, want (0, 1s]", d.RetryAfter)
	}

	// Half a token is not enough; a full one is.
	clk.Advance(500 * time.Millisecond)
	if d := c.Admit("alice", 1); d.OK {
		t.Error("admitted with a half-refilled bucket")
	}
	clk.Advance(600 * time.Millisecond)
	if d := c.Admit("alice", 1); !d.OK {
		t.Errorf("rejected after refill: %+v", d)
	}

	// Refill caps at Burst: a long idle stretch does not bank tokens.
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if d := c.Admit("alice", 1); !d.OK {
			t.Fatalf("post-idle admission %d rejected: %+v", i, d)
		}
	}
	if d := c.Admit("alice", 1); d.OK {
		t.Error("idle client banked more than Burst tokens")
	}
}

func TestClientsAreIsolated(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Rate: 1, Burst: 1, Now: clk.Now})
	if d := c.Admit("alice", 1); !d.OK {
		t.Fatalf("alice rejected: %+v", d)
	}
	if d := c.Admit("alice", 1); d.OK {
		t.Fatal("alice's second request passed, bucket should be empty")
	}
	// A drained alice must not affect bob.
	if d := c.Admit("bob", 1); !d.OK {
		t.Errorf("bob rejected after alice drained her bucket: %+v", d)
	}
}

// TestCostClampedToBurst: a request costing more than Burst drains a
// full bucket rather than being unservable forever.
func TestCostClampedToBurst(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Rate: 1, Burst: 5, Now: clk.Now})
	if d := c.Admit("alice", 500); !d.OK {
		t.Fatalf("oversized request never admitted: %+v", d)
	}
	// It drained everything.
	if d := c.Admit("alice", 1); d.OK {
		t.Error("bucket not fully drained by an oversized request")
	}
	// And recovers on the normal refill schedule.
	clk.Advance(5 * time.Second)
	if d := c.Admit("alice", 5); !d.OK {
		t.Errorf("bucket did not recover: %+v", d)
	}
}

func TestDisabledRateAdmitsEverything(t *testing.T) {
	c := New(Config{}) // Rate 0: no rate limiting
	for i := 0; i < 1000; i++ {
		if d := c.Admit("anyone", 100); !d.OK {
			t.Fatalf("disabled limiter rejected: %+v", d)
		}
	}
	if got := c.Snapshot().Clients; got != 0 {
		t.Errorf("disabled limiter tracked %d clients, want 0", got)
	}
}

func TestNilControllerAdmits(t *testing.T) {
	var c *Controller
	if d := c.Admit("x", 1); !d.OK {
		t.Error("nil controller rejected Admit")
	}
	if !c.AcquireInFlight() {
		t.Error("nil controller rejected AcquireInFlight")
	}
	c.ReleaseInFlight()
	c.CountRejection(ReasonQueueFull)
	if s := c.Snapshot(); s.InFlight != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestInFlightLimit(t *testing.T) {
	c := New(Config{MaxInFlight: 2})
	if !c.AcquireInFlight() || !c.AcquireInFlight() {
		t.Fatal("first two acquisitions failed")
	}
	if c.AcquireInFlight() {
		t.Fatal("third acquisition passed MaxInFlight=2")
	}
	c.ReleaseInFlight()
	if !c.AcquireInFlight() {
		t.Error("acquisition after release failed")
	}
	if got := c.Snapshot().InFlight; got != 2 {
		t.Errorf("snapshot inflight = %d, want 2", got)
	}
}

func TestClientEviction(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Rate: 1, Burst: 2, MaxClients: 4, Now: clk.Now})
	// Fill the table with drained buckets (cost 2 = whole burst), so
	// the free-eviction sweep finds nothing and LRU kicks in.
	for i := 0; i < 4; i++ {
		c.Admit(fmt.Sprintf("client-%d", i), 2)
		clk.Advance(time.Millisecond) // distinct lastUse ordering
	}
	c.Admit("client-new", 2)
	if got := c.Snapshot().Clients; got > 4 {
		t.Errorf("bucket table grew to %d, want <= MaxClients=4", got)
	}
	// The oldest (client-0) was evicted; it starts over with a full
	// bucket, while client-3 (retained) is still drained.
	if d := c.Admit("client-0", 2); !d.OK {
		t.Errorf("evicted client did not reset to a full bucket: %+v", d)
	}
	if d := c.Admit("client-3", 2); d.OK {
		t.Error("retained client's drained bucket was reset")
	}
}

func TestClientEvictionPrefersRefilled(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Rate: 100, Burst: 1, MaxClients: 2, Now: clk.Now})
	c.Admit("old-but-refilled", 1)
	clk.Advance(time.Second) // fully refills old-but-refilled
	c.Admit("drained", 1)
	c.Admit("overflow", 1) // triggers eviction
	// The refilled bucket is the free eviction; the drained one must
	// survive so its debt is remembered.
	if d := c.Admit("drained", 1); d.OK {
		t.Error("drained bucket was evicted (its debt was forgotten)")
	}
}

func TestRejectionMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := newFakeClock()
	c := New(Config{Rate: 1, Burst: 1, MaxInFlight: 1, Metrics: reg, Now: clk.Now})
	c.Admit("a", 1)
	c.Admit("a", 1) // rate_limited
	if !c.AcquireInFlight() {
		t.Fatal("first in-flight acquisition failed")
	}
	c.AcquireInFlight() // inflight rejection
	c.CountRejection(ReasonQueueFull)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`spec17_admission_rejected_total{reason="rate_limited"} 1`,
		`spec17_admission_rejected_total{reason="inflight"} 1`,
		`spec17_admission_rejected_total{reason="queue_full"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, b.String())
		}
	}

	snap := c.Snapshot()
	if snap.Rejected[ReasonRateLimited] != 1 || snap.Rejected[ReasonInFlight] != 1 || snap.Rejected[ReasonQueueFull] != 1 {
		t.Errorf("snapshot rejected = %v", snap.Rejected)
	}
}

// TestConcurrentAdmission exercises the bucket map and the in-flight
// counter under -race: many goroutines, many clients, concurrent
// acquire/release.
func TestConcurrentAdmission(t *testing.T) {
	c := New(Config{Rate: 1000, Burst: 50, MaxInFlight: 8, MaxClients: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				client := fmt.Sprintf("client-%d", (g+i)%24)
				c.Admit(client, 1)
				if c.AcquireInFlight() {
					c.ReleaseInFlight()
				}
				if i%50 == 0 {
					c.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Snapshot().InFlight; n != 0 {
		t.Errorf("in-flight count leaked: %d, want 0", n)
	}
	// The in-flight limit was never a hard failure under churn, and the
	// bucket table respected its bound (evictLocked runs on insert, so
	// transient +1 overshoot is the worst case).
	if got := c.Snapshot().Clients; got > 17 {
		t.Errorf("bucket table grew to %d, want <= 17", got)
	}
}
