// Package cache implements a trace-driven, set-associative cache
// simulator with true-LRU replacement, plus a composable multi-level
// hierarchy with split instruction/data accounting. It is the
// measurement substrate that replaces the paper's hardware cache
// performance counters (L1I/L1D/L2/L3 MPKI, Table II and Table III).
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity. Must be a positive multiple of
	// LineBytes*Ways.
	SizeBytes int
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// LineBytes is the block size; must be a power of two.
	LineBytes int
}

// Validate reports a descriptive error for impossible geometries.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)", c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// invalidTag marks an empty way. Real tags are line addresses shifted
// down by the set-index width, so a tag of all-ones would require an
// address beyond 2^63 — unreachable in the generated address space.
const invalidTag = ^uint64(0)

// Cache is a single simulated cache level. Create with New.
//
// Each set is one contiguous block of `ways` tag words kept in
// recency order (most recent first), with invalidTag in empty slots.
// This fuses what were three parallel arrays (tags, valid bits, LRU
// state) into a single cache-line-friendly block: one simulated
// access touches one run of memory, which is what keeps the simulator
// fast when the simulated geometry (an 8 MB L3's megabyte of tags) is
// far bigger than the host's own caches.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setShift  uint
	setMask   uint64
	lines     []uint64 // sets × ways, recency-ordered tags
	accesses  uint64
	misses    uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	if cfg.Ways > 255 {
		return nil, fmt.Errorf("cache: associativity %d exceeds supported maximum 255", cfg.Ways)
	}
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setShift:  uint(bits.TrailingZeros(uint(sets))),
		setMask:   uint64(sets - 1),
		lines:     make([]uint64, sets*cfg.Ways),
	}
	for i := range c.lines {
		c.lines[i] = invalidTag
	}
	return c, nil
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates a reference to addr and reports whether it hit.
// Misses allocate (write-allocate for stores, fetch for loads).
//
// The set is scanned in recency order, so a hit costs one probe in
// the common MRU case, and re-ordering is a short in-block slide.
// Which physical way a line occupies is unobservable; hit/miss
// outcomes and eviction choices are exact LRU, identical to the
// age-permutation implementation this replaced (empty slots sink to
// the tail and are filled before any valid line is evicted).
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> c.setShift
	ways := c.cfg.Ways
	base := set * ways
	c.accesses++

	s := c.lines[base : base+ways : base+ways]
	if s[0] == tag {
		return true // MRU fast path: no re-ordering needed
	}
	for p := 1; p < ways; p++ {
		if s[p] == tag {
			// Promote to MRU: slide the more-recent entries down one.
			copy(s[1:p+1], s[:p])
			s[0] = tag
			return true
		}
	}

	c.misses++
	// Fill at MRU, dropping the LRU tail (an empty slot while the set
	// is still filling).
	copy(s[1:], s[:ways-1])
	s[0] = tag
	return false
}

// Stats returns accesses and misses since creation or the last Reset.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// ResetStats clears the counters but keeps cache contents, so warmup
// references can be excluded from measurement.
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }

// Hierarchy models the three-level structure shared by the machines in
// Table IV: split L1 I/D, a unified (or split-per-core, modelled as
// unified) L2, and an optional unified L3. Instruction and data misses
// are accounted separately at L2 so the paper's L2I$/L2D$ MPKI metrics
// can be reported.
type Hierarchy struct {
	L1I, L1D *Cache
	L2       *Cache
	L3       *Cache // nil when the machine has no L3 (e.g. Xeon E5405)

	l2IAccesses, l2IMisses uint64
	l2DAccesses, l2DMisses uint64
	l3Accesses, l3Misses   uint64
}

// HierarchyConfig assembles a Hierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	L3           *Config
}

// NewHierarchy builds the hierarchy, validating every level.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	h := &Hierarchy{L1I: l1i, L1D: l1d, L2: l2}
	if cfg.L3 != nil {
		l3, err := New(*cfg.L3)
		if err != nil {
			return nil, fmt.Errorf("L3: %w", err)
		}
		h.L3 = l3
	}
	return h, nil
}

// FetchInstr simulates an instruction fetch of addr through the
// hierarchy and returns the deepest level that missed
// (0 = L1 hit, 1 = L1 miss/L2 hit, 2 = L2 miss/L3 hit, 3 = memory).
func (h *Hierarchy) FetchInstr(addr uint64) int {
	if h.L1I.Access(addr) {
		return 0
	}
	h.l2IAccesses++
	if h.L2.Access(addr) {
		return 1
	}
	h.l2IMisses++
	return h.accessL3(addr)
}

// AccessData simulates a load or store of addr and returns the deepest
// level that missed, with the same encoding as FetchInstr.
func (h *Hierarchy) AccessData(addr uint64) int {
	if h.L1D.Access(addr) {
		return 0
	}
	h.l2DAccesses++
	if h.L2.Access(addr) {
		return 1
	}
	h.l2DMisses++
	return h.accessL3(addr)
}

func (h *Hierarchy) accessL3(addr uint64) int {
	if h.L3 == nil {
		return 3
	}
	h.l3Accesses++
	if h.L3.Access(addr) {
		return 2
	}
	h.l3Misses++
	return 3
}

// Counts aggregates the hierarchy's miss statistics.
type Counts struct {
	L1IAccesses, L1IMisses uint64
	L1DAccesses, L1DMisses uint64
	L2IAccesses, L2IMisses uint64
	L2DAccesses, L2DMisses uint64
	L3Accesses, L3Misses   uint64
}

// Counts returns a snapshot of all levels' counters.
func (h *Hierarchy) Counts() Counts {
	c := Counts{
		L2IAccesses: h.l2IAccesses, L2IMisses: h.l2IMisses,
		L2DAccesses: h.l2DAccesses, L2DMisses: h.l2DMisses,
		L3Accesses: h.l3Accesses, L3Misses: h.l3Misses,
	}
	c.L1IAccesses, c.L1IMisses = h.L1I.Stats()
	c.L1DAccesses, c.L1DMisses = h.L1D.Stats()
	return c
}

// ResetStats clears counters on all levels, keeping contents warm.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	if h.L3 != nil {
		h.L3.ResetStats()
	}
	h.l2IAccesses, h.l2IMisses = 0, 0
	h.l2DAccesses, h.l2DMisses = 0, 0
	h.l3Accesses, h.l3Misses = 0, 0
}
