// Package cache implements a trace-driven, set-associative cache
// simulator with true-LRU replacement, plus a composable multi-level
// hierarchy with split instruction/data accounting. It is the
// measurement substrate that replaces the paper's hardware cache
// performance counters (L1I/L1D/L2/L3 MPKI, Table II and Table III).
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity. Must be a positive multiple of
	// LineBytes*Ways.
	SizeBytes int
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// LineBytes is the block size; must be a power of two.
	LineBytes int
}

// Validate reports a descriptive error for impossible geometries.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)", c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Cache is a single simulated cache level. Create with New.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets × ways
	valid     []bool
	lru       []uint8 // per-line LRU age: 0 = most recent
	accesses  uint64
	misses    uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	if cfg.Ways > 255 {
		return nil, fmt.Errorf("cache: associativity %d exceeds supported maximum 255", cfg.Ways)
	}
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
		lru:       make([]uint8, sets*cfg.Ways),
	}
	// Seed every set's ages with the permutation 0..ways-1. The touch
	// rule below preserves the permutation invariant, giving exact LRU.
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			c.lru[s*cfg.Ways+w] = uint8(w)
		}
	}
	return c, nil
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates a reference to addr and reports whether it hit.
// Misses allocate (write-allocate for stores, fetch for loads).
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.TrailingZeros(uint(c.sets)))
	base := set * c.cfg.Ways
	c.accesses++

	hitWay := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touch(base, hitWay)
		return true
	}

	c.misses++
	// Victim: the oldest way. Ages are a permutation of 0..ways-1 per
	// set (touch preserves the invariant), so the maximum is unique.
	// Invalid ways are never touched, so they hold the oldest ages and
	// are filled before any valid line is evicted.
	victim, oldest := 0, c.lru[base]
	for w := 1; w < c.cfg.Ways; w++ {
		if c.lru[base+w] > oldest {
			victim, oldest = w, c.lru[base+w]
		}
	}
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	c.touch(base, victim)
	return false
}

// touch makes way the most recently used entry in its set.
func (c *Cache) touch(base, way int) {
	cur := c.lru[base+way]
	for w := 0; w < c.cfg.Ways; w++ {
		if c.lru[base+w] < cur {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// Stats returns accesses and misses since creation or the last Reset.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// ResetStats clears the counters but keeps cache contents, so warmup
// references can be excluded from measurement.
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }

// Hierarchy models the three-level structure shared by the machines in
// Table IV: split L1 I/D, a unified (or split-per-core, modelled as
// unified) L2, and an optional unified L3. Instruction and data misses
// are accounted separately at L2 so the paper's L2I$/L2D$ MPKI metrics
// can be reported.
type Hierarchy struct {
	L1I, L1D *Cache
	L2       *Cache
	L3       *Cache // nil when the machine has no L3 (e.g. Xeon E5405)

	l2IAccesses, l2IMisses uint64
	l2DAccesses, l2DMisses uint64
	l3Accesses, l3Misses   uint64
}

// HierarchyConfig assembles a Hierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	L3           *Config
}

// NewHierarchy builds the hierarchy, validating every level.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	h := &Hierarchy{L1I: l1i, L1D: l1d, L2: l2}
	if cfg.L3 != nil {
		l3, err := New(*cfg.L3)
		if err != nil {
			return nil, fmt.Errorf("L3: %w", err)
		}
		h.L3 = l3
	}
	return h, nil
}

// FetchInstr simulates an instruction fetch of addr through the
// hierarchy and returns the deepest level that missed
// (0 = L1 hit, 1 = L1 miss/L2 hit, 2 = L2 miss/L3 hit, 3 = memory).
func (h *Hierarchy) FetchInstr(addr uint64) int {
	if h.L1I.Access(addr) {
		return 0
	}
	h.l2IAccesses++
	if h.L2.Access(addr) {
		return 1
	}
	h.l2IMisses++
	return h.accessL3(addr)
}

// AccessData simulates a load or store of addr and returns the deepest
// level that missed, with the same encoding as FetchInstr.
func (h *Hierarchy) AccessData(addr uint64) int {
	if h.L1D.Access(addr) {
		return 0
	}
	h.l2DAccesses++
	if h.L2.Access(addr) {
		return 1
	}
	h.l2DMisses++
	return h.accessL3(addr)
}

func (h *Hierarchy) accessL3(addr uint64) int {
	if h.L3 == nil {
		return 3
	}
	h.l3Accesses++
	if h.L3.Access(addr) {
		return 2
	}
	h.l3Misses++
	return 3
}

// Counts aggregates the hierarchy's miss statistics.
type Counts struct {
	L1IAccesses, L1IMisses uint64
	L1DAccesses, L1DMisses uint64
	L2IAccesses, L2IMisses uint64
	L2DAccesses, L2DMisses uint64
	L3Accesses, L3Misses   uint64
}

// Counts returns a snapshot of all levels' counters.
func (h *Hierarchy) Counts() Counts {
	c := Counts{
		L2IAccesses: h.l2IAccesses, L2IMisses: h.l2IMisses,
		L2DAccesses: h.l2DAccesses, L2DMisses: h.l2DMisses,
		L3Accesses: h.l3Accesses, L3Misses: h.l3Misses,
	}
	c.L1IAccesses, c.L1IMisses = h.L1I.Stats()
	c.L1DAccesses, c.L1DMisses = h.L1D.Stats()
	return c
}

// ResetStats clears counters on all levels, keeping contents warm.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	if h.L3 != nil {
		h.L3.ResetStats()
	}
	h.l2IAccesses, h.l2IMisses = 0, 0
	h.l2DAccesses, h.l2DMisses = 0, 0
	h.l3Accesses, h.l3Misses = 0, 0
}
