package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func small() Config { return Config{SizeBytes: 1024, Ways: 2, LineBytes: 64} } // 8 sets

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 64},
		{SizeBytes: 1024, Ways: 0, LineBytes: 64},
		{SizeBytes: 1024, Ways: 2, LineBytes: 48},       // not power of two
		{SizeBytes: 1000, Ways: 2, LineBytes: 64},       // not divisible
		{SizeBytes: 64 * 3 * 1, Ways: 1, LineBytes: 64}, // 3 sets, not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if err := small().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if small().Sets() != 8 {
		t.Fatalf("Sets() = %d, want 8", small().Sets())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := New(small())
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000) {
		t.Fatal("first access must be a cold miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access to same address must hit")
	}
	if !c.Access(0x1004) {
		t.Fatal("same-line access must hit")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 1 {
		t.Fatalf("stats = %d/%d, want 3/1", acc, miss)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: three distinct lines mapping to the same set must
	// evict the least recently used.
	c, _ := New(small())
	sets := uint64(c.Config().Sets())
	line := uint64(c.Config().LineBytes)
	a := uint64(0)
	b := a + sets*line   // same set, different tag
	d := a + 2*sets*line // same set, third tag
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	if c.Access(d) {
		t.Fatal("third tag must miss")
	}
	if !c.Access(a) {
		t.Fatal("a must still be resident (was MRU)")
	}
	if c.Access(b) {
		t.Fatal("b must have been evicted (was LRU)")
	}
}

func TestWorkingSetFitsVsOverflows(t *testing.T) {
	c, _ := New(Config{SizeBytes: 4096, Ways: 4, LineBytes: 64})
	r := rng.New(1)
	// Working set half the cache: after warmup, miss rate ≈ 0.
	c.ResetStats()
	for i := 0; i < 20000; i++ {
		c.Access(uint64(r.Intn(2048)))
	}
	c.ResetStats()
	for i := 0; i < 20000; i++ {
		c.Access(uint64(r.Intn(2048)))
	}
	if mr := c.MissRate(); mr > 0.001 {
		t.Fatalf("fitting working set miss rate %v, want ~0", mr)
	}
	// Working set 16x the cache: most accesses miss.
	big, _ := New(Config{SizeBytes: 4096, Ways: 4, LineBytes: 64})
	for i := 0; i < 40000; i++ {
		big.Access(uint64(r.Intn(64 * 4096)))
	}
	big.ResetStats()
	for i := 0; i < 40000; i++ {
		big.Access(uint64(r.Intn(64 * 4096)))
	}
	if mr := big.MissRate(); mr < 0.5 {
		t.Fatalf("overflowing working set miss rate %v, want > 0.5", mr)
	}
}

func TestMissRateBeforeAccess(t *testing.T) {
	c, _ := New(small())
	if c.MissRate() != 0 {
		t.Fatal("MissRate before any access should be 0")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c, _ := New(small())
	c.Access(0x40)
	c.ResetStats()
	if acc, miss := c.Stats(); acc != 0 || miss != 0 {
		t.Fatal("ResetStats must zero counters")
	}
	if !c.Access(0x40) {
		t.Fatal("contents must survive ResetStats")
	}
}

func TestAssociativityMatters(t *testing.T) {
	// Direct-mapped thrashing: alternating between two same-set lines
	// always misses; 2-way holds both.
	dm, _ := New(Config{SizeBytes: 512, Ways: 1, LineBytes: 64})
	tw, _ := New(Config{SizeBytes: 512, Ways: 2, LineBytes: 64})
	sets := uint64(dm.Config().Sets())
	a, b := uint64(0), sets*64
	for i := 0; i < 100; i++ {
		dm.Access(a)
		dm.Access(b)
		tw.Access(a)
		tw.Access(b % (sets / 2 * 64 * 2)) // same-set pair for 2-way too
	}
	if dm.MissRate() < 0.99 {
		t.Fatalf("direct-mapped ping-pong should thrash, miss rate %v", dm.MissRate())
	}
	if tw.MissRate() > 0.05 {
		t.Fatalf("2-way should hold both lines, miss rate %v", tw.MissRate())
	}
}

// Property: miss count never exceeds access count, and re-accessing the
// same address immediately always hits.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c, err := New(Config{SizeBytes: 2048, Ways: 4, LineBytes: 32})
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 2000; i++ {
			addr := uint64(r.Intn(1 << 20))
			c.Access(addr)
			if !c.Access(addr) {
				return false
			}
		}
		acc, miss := c.Stats()
		return miss <= acc && acc == 4000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func newTestHierarchy(t *testing.T, withL3 bool) *Hierarchy {
	t.Helper()
	cfg := HierarchyConfig{
		L1I: Config{SizeBytes: 1024, Ways: 2, LineBytes: 64},
		L1D: Config{SizeBytes: 1024, Ways: 2, LineBytes: 64},
		L2:  Config{SizeBytes: 8192, Ways: 4, LineBytes: 64},
	}
	if withL3 {
		cfg.L3 = &Config{SizeBytes: 65536, Ways: 8, LineBytes: 64}
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := newTestHierarchy(t, true)
	if lvl := h.AccessData(0x10000); lvl != 3 {
		t.Fatalf("cold access level %d, want 3 (memory)", lvl)
	}
	if lvl := h.AccessData(0x10000); lvl != 0 {
		t.Fatalf("hot access level %d, want 0 (L1)", lvl)
	}
	cts := h.Counts()
	if cts.L1DAccesses != 2 || cts.L1DMisses != 1 {
		t.Fatalf("L1D counts %+v", cts)
	}
	if cts.L2DAccesses != 1 || cts.L2DMisses != 1 {
		t.Fatalf("L2D counts %+v", cts)
	}
	if cts.L3Accesses != 1 || cts.L3Misses != 1 {
		t.Fatalf("L3 counts %+v", cts)
	}
}

func TestHierarchyInstrVsDataAccounting(t *testing.T) {
	h := newTestHierarchy(t, true)
	h.FetchInstr(0x4000)
	h.AccessData(0x8000)
	cts := h.Counts()
	if cts.L1IMisses != 1 || cts.L1DMisses != 1 {
		t.Fatalf("split L1 accounting wrong: %+v", cts)
	}
	if cts.L2IMisses != 1 || cts.L2DMisses != 1 {
		t.Fatalf("split L2 accounting wrong: %+v", cts)
	}
}

func TestHierarchyNoL3(t *testing.T) {
	h := newTestHierarchy(t, false)
	if lvl := h.AccessData(0x999999); lvl != 3 {
		t.Fatalf("without L3, L2 miss should go to memory (3), got %d", lvl)
	}
	if cts := h.Counts(); cts.L3Accesses != 0 {
		t.Fatal("no L3 accesses should be recorded without an L3")
	}
}

func TestHierarchyL2CatchesL1Miss(t *testing.T) {
	h := newTestHierarchy(t, true)
	// Fill L1D beyond capacity but within L2: re-walk should hit L2.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			h.AccessData(a)
		}
	}
	h.ResetStats()
	for a := uint64(0); a < 4096; a += 64 {
		h.AccessData(a)
	}
	cts := h.Counts()
	if cts.L2DMisses != 0 {
		t.Fatalf("all lines should be in L2, got %d L2D misses", cts.L2DMisses)
	}
	if cts.L1DMisses == 0 {
		t.Fatal("working set exceeds L1D, expected L1D misses")
	}
}

func TestHierarchyValidatesLevels(t *testing.T) {
	_, err := NewHierarchy(HierarchyConfig{
		L1I: Config{SizeBytes: 1000, Ways: 2, LineBytes: 64}, // invalid
		L1D: small(),
		L2:  small(),
	})
	if err == nil {
		t.Fatal("expected validation error")
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := newTestHierarchy(t, true)
	h.AccessData(0x1234)
	h.FetchInstr(0x5678)
	h.ResetStats()
	cts := h.Counts()
	if cts != (Counts{}) {
		t.Fatalf("counts after reset: %+v", cts)
	}
}
