package cluster

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// twoBlobs returns 6 points forming two well-separated groups of 3.
func twoBlobs() ([][]float64, []string) {
	pts := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, // blob A: 0,1,2
		{10, 10}, {10.1, 10}, {10, 10.1}, // blob B: 3,4,5
	}
	return pts, []string{"a0", "a1", "a2", "b0", "b1", "b2"}
}

func TestClusterTwoBlobs(t *testing.T) {
	pts, labels := twoBlobs()
	for _, method := range []Linkage{Single, Complete, Average, Ward} {
		d, err := Cluster(pts, labels, method)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		got := d.CutToK(2)
		want := [][]int{{0, 1, 2}, {3, 4, 5}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v linkage: CutToK(2) = %v, want %v", method, got, want)
		}
	}
}

func TestClusterSinglePoint(t *testing.T) {
	d, err := Cluster([][]float64{{1, 2}}, []string{"only"}, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Root.IsLeaf() || d.Root.Item != 0 {
		t.Fatal("single point must be a leaf root")
	}
	if got := d.CutToK(1); !reflect.DeepEqual(got, [][]int{{0}}) {
		t.Fatalf("CutToK(1) = %v", got)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, nil, Ward); err == nil {
		t.Fatal("expected error for no points")
	}
	if _, err := Cluster([][]float64{{1}, {1, 2}}, nil, Ward); err == nil {
		t.Fatal("expected error for mismatched dimensions")
	}
	if _, err := Cluster([][]float64{{1}, {2}}, []string{"x"}, Ward); err == nil {
		t.Fatal("expected error for wrong label count")
	}
}

func TestCutAtHeight(t *testing.T) {
	pts, labels := twoBlobs()
	d, err := Cluster(pts, labels, Average)
	if err != nil {
		t.Fatal(err)
	}
	// At height 1 the two blobs are separate; at a huge height all merge.
	got := d.CutAtHeight(1)
	if len(got) != 2 {
		t.Fatalf("CutAtHeight(1) gave %d clusters, want 2: %v", len(got), got)
	}
	all := d.CutAtHeight(1e9)
	if len(all) != 1 || len(all[0]) != 6 {
		t.Fatalf("CutAtHeight(inf) = %v", all)
	}
	each := d.CutAtHeight(-1)
	if len(each) != 6 {
		t.Fatalf("CutAtHeight(-1) gave %d clusters, want 6", len(each))
	}
}

func TestHeightForK(t *testing.T) {
	pts, labels := twoBlobs()
	d, err := Cluster(pts, labels, Average)
	if err != nil {
		t.Fatal(err)
	}
	h := d.HeightForK(2)
	if got := d.CutAtHeight(h); len(got) != 2 {
		t.Fatalf("cutting at HeightForK(2)=%v gave %d clusters", h, len(got))
	}
	if d.HeightForK(6) != 0 {
		t.Fatal("HeightForK(n) must be 0")
	}
}

func TestMergeHeightsSortedAndCount(t *testing.T) {
	pts, labels := twoBlobs()
	d, _ := Cluster(pts, labels, Ward)
	hs := d.MergeHeights()
	if len(hs) != 5 {
		t.Fatalf("6 leaves should give 5 merges, got %d", len(hs))
	}
	for i := 1; i < len(hs); i++ {
		if hs[i] < hs[i-1] {
			t.Fatal("merge heights must be sorted ascending")
		}
	}
}

func TestCopheneticDistance(t *testing.T) {
	pts, labels := twoBlobs()
	d, _ := Cluster(pts, labels, Average)
	within, err := d.CopheneticDistance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	across, err := d.CopheneticDistance(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if within >= across {
		t.Fatalf("within-blob cophenetic %v should be < across-blob %v", within, across)
	}
	if self, _ := d.CopheneticDistance(2, 2); self != 0 {
		t.Fatalf("self-distance = %v, want 0", self)
	}
	if _, err := d.CopheneticDistance(0, 99); err == nil {
		t.Fatal("expected range error")
	}
}

func TestRepresentatives(t *testing.T) {
	// Cluster {0,1,2}: point 1 is between 0 and 2, so it minimizes the
	// total distance to the others and must be the representative.
	pts := [][]float64{{0}, {1}, {2}, {100}}
	d, err := Cluster(pts, []string{"p0", "p1", "p2", "far"}, Average)
	if err != nil {
		t.Fatal(err)
	}
	clusters := d.CutToK(2)
	reps := d.Representatives(clusters)
	if !reflect.DeepEqual(reps, []int{1, 3}) {
		t.Fatalf("Representatives = %v, want [1 3]", reps)
	}
}

func TestMostDistinct(t *testing.T) {
	// Point 3 is far from the tight group, so it merges last.
	pts := [][]float64{{0}, {0.1}, {0.2}, {50}}
	d, err := Cluster(pts, []string{"a", "b", "c", "outlier"}, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MostDistinct(); got != 3 {
		t.Fatalf("MostDistinct = %d, want 3", got)
	}
}

func TestLinkageString(t *testing.T) {
	cases := map[Linkage]string{Single: "single", Complete: "complete", Average: "average", Ward: "ward", Linkage(9): "Linkage(9)"}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("Linkage(%d).String() = %q, want %q", int(l), l.String(), want)
		}
	}
}

func TestWardHeightsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	d, err := Cluster(pts, nil, Ward)
	if err != nil {
		t.Fatal(err)
	}
	// Ward (and average/complete on Euclidean data) produce monotone
	// dendrograms: parent height >= child height.
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n.IsLeaf() {
			return true
		}
		for _, c := range []*Node{n.Left, n.Right} {
			if !c.IsLeaf() && c.Height > n.Height+1e-9 {
				return false
			}
			if !walk(c) {
				return false
			}
		}
		return true
	}
	if !walk(d.Root) {
		t.Fatal("Ward dendrogram heights not monotone")
	}
}

// Property: for any point set, CutToK(k) yields exactly k clusters that
// partition all indices.
func TestCutToKPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		d, err := Cluster(pts, nil, Ward)
		if err != nil {
			return false
		}
		for k := 1; k <= n; k++ {
			clusters := d.CutToK(k)
			if len(clusters) != k {
				return false
			}
			seen := make(map[int]bool)
			for _, c := range clusters {
				for _, i := range c {
					if seen[i] {
						return false
					}
					seen[i] = true
				}
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: cophenetic distance is symmetric and >= 0, and bounded by
// the root height.
func TestCopheneticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		d, err := Cluster(pts, nil, Average)
		if err != nil {
			return false
		}
		rootH := d.Root.Height
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dij, err := d.CopheneticDistance(i, j)
				if err != nil {
					return false
				}
				dji, err := d.CopheneticDistance(j, i)
				if err != nil {
					return false
				}
				if dij != dji || dij < 0 || dij > rootH+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderContainsAllLabels(t *testing.T) {
	pts, labels := twoBlobs()
	d, _ := Cluster(pts, labels, Ward)
	out := d.Render(40)
	for _, l := range labels {
		if !strings.Contains(out, l) {
			t.Fatalf("render output missing label %q:\n%s", l, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(labels)+1 { // header + one line per leaf
		t.Fatalf("render has %d lines, want %d", len(lines), len(labels)+1)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	d, _ := Cluster([][]float64{{1}}, []string{"solo"}, Ward)
	out := d.Render(30)
	if !strings.Contains(out, "solo") {
		t.Fatalf("render = %q", out)
	}
}

func TestClusterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([][]float64, 15)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	d1, _ := Cluster(pts, nil, Ward)
	d2, _ := Cluster(pts, nil, Ward)
	if d1.Render(40) != d2.Render(40) {
		t.Fatal("clustering must be deterministic")
	}
}
