// Package cluster implements agglomerative hierarchical clustering and
// dendrogram analysis, the similarity machinery of Section III of the
// paper: programs are points in (PCA-reduced) metric space, merged
// bottom-up by linkage distance, and subsets are read off the
// dendrogram by cutting it at a chosen height.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Linkage selects how the distance between two clusters is derived
// from the pairwise distances of their members.
type Linkage int

const (
	// Single linkage: minimum pairwise distance (nearest neighbour).
	Single Linkage = iota
	// Complete linkage: maximum pairwise distance (furthest neighbour).
	Complete
	// Average linkage (UPGMA): unweighted mean pairwise distance.
	Average
	// Ward linkage: merge that minimizes the increase in total
	// within-cluster variance. This is the linkage used for all the
	// dendrograms in the paper's figures.
	Ward
)

// String returns the conventional name of the linkage method.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Ward:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Node is a dendrogram node. Leaves have Left == Right == nil and a
// valid Item index; internal nodes carry the linkage Height at which
// their two children merged.
type Node struct {
	Item        int // leaf: index into the original observations; -1 for internal nodes
	Left, Right *Node
	Height      float64 // linkage distance at which Left and Right merged
	size        int
}

// IsLeaf reports whether the node is a single observation.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Size returns the number of leaves under the node.
func (n *Node) Size() int {
	if n.IsLeaf() {
		return 1
	}
	return n.size
}

// Leaves returns the observation indices under the node, left to right.
func (n *Node) Leaves() []int {
	var out []int
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m.Item)
			return
		}
		walk(m.Left)
		walk(m.Right)
	}
	walk(n)
	return out
}

// Dendrogram is the result of hierarchical clustering of n observations.
type Dendrogram struct {
	// Root of the merge tree (nil when n == 0).
	Root *Node
	// Labels for each observation, used in rendering and reporting.
	Labels []string
	// Points are the observations in the clustered space; kept for
	// representative selection.
	Points [][]float64
	// Method is the linkage used.
	Method Linkage
}

// Cluster groups the points by agglomerative hierarchical clustering
// using Euclidean distance and the given linkage. labels must be the
// same length as points (or nil, in which case index labels are
// generated). All points must share the same dimensionality.
func Cluster(points [][]float64, labels []string, method Linkage) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if labels == nil {
		labels = make([]string, n)
		for i := range labels {
			labels[i] = fmt.Sprintf("#%d", i)
		}
	}
	if len(labels) != n {
		return nil, fmt.Errorf("cluster: %d labels for %d points", len(labels), n)
	}

	// Lance–Williams recurrence over an active-cluster distance matrix.
	type clusterState struct {
		node *Node
		size int
	}
	active := make([]*clusterState, 0, n)
	for i := 0; i < n; i++ {
		active = append(active, &clusterState{node: &Node{Item: i}, size: 1})
	}
	// dist[i][j] for i<j among active clusters, stored in a full
	// symmetric matrix for simplicity (n is ≤ ~100 in all our uses).
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := stats.Euclidean(points[i], points[j])
			if method == Ward {
				// Initialize with squared distance/2-style Ward metric
				// handled via the recurrence below; the standard
				// convention initializes with Euclidean distance.
				d = d * d
			}
			dist[i][j] = d
			dist[j][i] = d
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	remaining := n
	for remaining > 1 {
		// Find the closest active pair (ties broken by lowest index,
		// keeping results deterministic).
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if dist[i][j] < best {
					best = dist[i][j]
					bi, bj = i, j
				}
			}
		}

		height := best
		if method == Ward {
			// We carried squared distances through the recurrence;
			// report heights on the natural distance scale.
			height = math.Sqrt(best)
		}
		merged := &Node{
			Item:   -1,
			Left:   active[bi].node,
			Right:  active[bj].node,
			Height: height,
			size:   active[bi].size + active[bj].size,
		}

		si := float64(active[bi].size)
		sj := float64(active[bj].size)
		for k := 0; k < n; k++ {
			if !alive[k] || k == bi || k == bj {
				continue
			}
			dik := dist[bi][k]
			djk := dist[bj][k]
			var d float64
			switch method {
			case Single:
				d = math.Min(dik, djk)
			case Complete:
				d = math.Max(dik, djk)
			case Average:
				d = (si*dik + sj*djk) / (si + sj)
			case Ward:
				sk := float64(active[k].size)
				tot := si + sj + sk
				d = ((si+sk)*dik + (sj+sk)*djk - sk*dist[bi][bj]) / tot
			default:
				return nil, fmt.Errorf("cluster: unknown linkage %v", method)
			}
			dist[bi][k] = d
			dist[k][bi] = d
		}

		active[bi] = &clusterState{node: merged, size: merged.size}
		alive[bj] = false
		remaining--
	}

	var root *Node
	for i := 0; i < n; i++ {
		if alive[i] {
			root = active[i].node
			break
		}
	}
	pts := make([][]float64, n)
	for i, p := range points {
		pts[i] = append([]float64(nil), p...)
	}
	return &Dendrogram{Root: root, Labels: append([]string(nil), labels...), Points: pts, Method: method}, nil
}

// CutAtHeight cuts the dendrogram at the given linkage distance and
// returns the resulting clusters (as sets of observation indices).
// A vertical line at height h in the paper's dendrogram figures yields
// exactly these clusters.
func (d *Dendrogram) CutAtHeight(h float64) [][]int {
	var clusters [][]int
	var walk func(*Node)
	walk = func(n *Node) {
		if n.IsLeaf() || n.Height <= h {
			clusters = append(clusters, n.Leaves())
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	if d.Root != nil {
		walk(d.Root)
	}
	sortClusters(clusters)
	return clusters
}

// CutToK cuts the dendrogram to exactly k clusters by undoing the
// k-1 highest merges. k is clamped to [1, number of leaves].
func (d *Dendrogram) CutToK(k int) [][]int {
	if d.Root == nil {
		return nil
	}
	n := d.Root.Size()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Maintain a max-heap-ish frontier: repeatedly split the frontier
	// node with the greatest height until we have k nodes.
	frontier := []*Node{d.Root}
	for len(frontier) < k {
		// Find the internal frontier node with max height.
		bi, best := -1, math.Inf(-1)
		for i, nd := range frontier {
			if !nd.IsLeaf() && nd.Height > best {
				best = nd.Height
				bi = i
			}
		}
		if bi == -1 {
			break // all leaves
		}
		nd := frontier[bi]
		frontier = append(frontier[:bi], frontier[bi+1:]...)
		frontier = append(frontier, nd.Left, nd.Right)
	}
	clusters := make([][]int, 0, len(frontier))
	for _, nd := range frontier {
		clusters = append(clusters, nd.Leaves())
	}
	sortClusters(clusters)
	return clusters
}

// HeightForK returns the linkage height at which the dendrogram first
// has exactly k clusters: cutting anywhere in [h, nextMergeHeight)
// yields k clusters. It returns 0 when k >= number of leaves.
func (d *Dendrogram) HeightForK(k int) float64 {
	heights := d.MergeHeights()
	// n leaves, n-1 merges sorted ascending. Cutting just below the
	// (n-k+1)-th highest merge gives k clusters.
	n := len(heights) + 1
	if k >= n {
		return 0
	}
	if k < 1 {
		k = 1
	}
	return heights[n-k-1]
}

// MergeHeights returns all internal merge heights sorted ascending.
func (d *Dendrogram) MergeHeights() []float64 {
	var hs []float64
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		hs = append(hs, n.Height)
		walk(n.Left)
		walk(n.Right)
	}
	walk(d.Root)
	sort.Float64s(hs)
	return hs
}

// CopheneticDistance returns the dendrogram (cophenetic) distance
// between observations i and j: the height of their lowest common
// ancestor. The paper's rate-vs-speed comparison reads exactly this
// quantity off Figures 7 and 8.
func (d *Dendrogram) CopheneticDistance(i, j int) (float64, error) {
	n := len(d.Labels)
	if i < 0 || i >= n || j < 0 || j >= n {
		return 0, fmt.Errorf("cluster: index out of range (%d, %d) of %d", i, j, n)
	}
	if i == j {
		return 0, nil
	}
	var find func(nd *Node) (hasI, hasJ bool, h float64, done bool)
	find = func(nd *Node) (bool, bool, float64, bool) {
		if nd.IsLeaf() {
			return nd.Item == i, nd.Item == j, 0, false
		}
		li, lj, lh, ld := find(nd.Left)
		if ld {
			return true, true, lh, true
		}
		ri, rj, rh, rd := find(nd.Right)
		if rd {
			return true, true, rh, true
		}
		hasI := li || ri
		hasJ := lj || rj
		if hasI && hasJ {
			return true, true, nd.Height, true
		}
		return hasI, hasJ, 0, false
	}
	_, _, h, ok := find(d.Root)
	if !ok {
		return 0, fmt.Errorf("cluster: indices %d and %d not found under a common ancestor", i, j)
	}
	return h, nil
}

// Representatives picks one observation per cluster: the member whose
// total Euclidean distance to the rest of its cluster is smallest
// (for singleton clusters, the member itself). This realizes the
// paper's rule of choosing "the benchmark with the shortest linkage
// distance" as the cluster representative.
func (d *Dendrogram) Representatives(clusters [][]int) []int {
	reps := make([]int, 0, len(clusters))
	for _, c := range clusters {
		reps = append(reps, d.representative(c))
	}
	sort.Ints(reps)
	return reps
}

func (d *Dendrogram) representative(members []int) int {
	if len(members) == 1 {
		return members[0]
	}
	best, bestSum := members[0], math.Inf(1)
	for _, i := range members {
		sum := 0.0
		for _, j := range members {
			if i == j {
				continue
			}
			sum += stats.Euclidean(d.Points[i], d.Points[j])
		}
		if sum < bestSum || (sum == bestSum && i < best) {
			best, bestSum = i, sum
		}
	}
	return best
}

// MostDistinct returns the index of the observation that merges into
// the tree at the greatest height — the benchmark "with the most
// distinct performance features" in the paper's reading of the
// dendrograms. For every leaf the joining height is the height of its
// parent merge; the leaf whose parent height is maximal wins, with the
// deepest singleton branch preferred on ties.
func (d *Dendrogram) MostDistinct() int {
	if d.Root == nil {
		return -1
	}
	if d.Root.IsLeaf() {
		return d.Root.Item
	}
	bestItem, bestHeight := -1, math.Inf(-1)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		for _, child := range []*Node{n.Left, n.Right} {
			if child.IsLeaf() && n.Height > bestHeight {
				bestHeight = n.Height
				bestItem = child.Item
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(d.Root)
	return bestItem
}

// sortClusters orders each cluster's members ascending and the
// clusters themselves by first member, so output is deterministic.
func sortClusters(clusters [][]int) {
	for _, c := range clusters {
		sort.Ints(c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
}
