package cluster

import (
	"fmt"
	"math"
)

// CopheneticCorrelation measures how similar two dendrograms are over
// a common set of items: the Pearson correlation between the two
// trees' cophenetic (merge-height) distances across all item pairs.
// 1 means the trees encode identical similarity structure; values
// near 0 mean unrelated structure.
//
// itemsA and itemsB give the observation indices to compare, pairing
// itemsA[i] with itemsB[i] (e.g. the rate and speed versions of the
// same benchmark family in two sub-suite dendrograms).
func CopheneticCorrelation(a, b *Dendrogram, itemsA, itemsB []int) (float64, error) {
	if len(itemsA) != len(itemsB) {
		return 0, fmt.Errorf("cluster: %d items vs %d items", len(itemsA), len(itemsB))
	}
	n := len(itemsA)
	if n < 3 {
		return 0, fmt.Errorf("cluster: cophenetic correlation needs at least 3 items, have %d", n)
	}
	var xs, ys []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da, err := a.CopheneticDistance(itemsA[i], itemsA[j])
			if err != nil {
				return 0, err
			}
			db, err := b.CopheneticDistance(itemsB[i], itemsB[j])
			if err != nil {
				return 0, err
			}
			xs = append(xs, da)
			ys = append(ys, db)
		}
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("cluster: degenerate (constant) cophenetic distances")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
