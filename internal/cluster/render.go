package cluster

import (
	"fmt"
	"strings"
)

// Render draws the dendrogram as ASCII art, one leaf per line, with
// merge brackets positioned horizontally by linkage height — a textual
// analogue of the paper's Figures 2–4, 7, 8, and 13. width is the
// number of columns used for the height axis (min 20).
func (d *Dendrogram) Render(width int) string {
	if d.Root == nil {
		return "(empty dendrogram)\n"
	}
	if width < 20 {
		width = 20
	}
	maxH := d.Root.Height
	if d.Root.IsLeaf() || maxH == 0 {
		var b strings.Builder
		for _, l := range d.Root.Leaves() {
			fmt.Fprintf(&b, "%s\n", d.Labels[l])
		}
		return b.String()
	}

	// Longest label, for the gutter.
	gutter := 0
	for _, l := range d.Labels {
		if len(l) > gutter {
			gutter = len(l)
		}
	}

	// Each leaf is a row; each node spans the rows of its leaves and
	// owns a column proportional to its height.
	type rowState struct {
		label string
		cells []byte
	}
	leaves := d.Root.Leaves()
	rowOf := make(map[int]int, len(leaves))
	rows := make([]rowState, len(leaves))
	for r, item := range leaves {
		rowOf[item] = r
		rows[r] = rowState{label: d.Labels[item], cells: bytesFill(width+1, ' ')}
	}

	col := func(h float64) int {
		c := int(h / maxH * float64(width))
		if c < 1 {
			c = 1
		}
		if c > width {
			c = width
		}
		return c
	}

	// extent returns the first and last row and the column at which the
	// subtree's horizontal branch line currently ends (its merge column,
	// or 0 for leaves).
	var draw func(n *Node) (top, bottom, mid, endCol int)
	draw = func(n *Node) (int, int, int, int) {
		if n.IsLeaf() {
			r := rowOf[n.Item]
			return r, r, r, 0
		}
		t1, b1, m1, e1 := draw(n.Left)
		t2, b2, m2, e2 := draw(n.Right)
		c := col(n.Height)
		// Horizontal lines from each child's end column to this merge column.
		for x := e1; x < c; x++ {
			if rows[m1].cells[x] == ' ' {
				rows[m1].cells[x] = '-'
			}
		}
		for x := e2; x < c; x++ {
			if rows[m2].cells[x] == ' ' {
				rows[m2].cells[x] = '-'
			}
		}
		// Vertical connector at the merge column.
		lo, hi := m1, m2
		if lo > hi {
			lo, hi = hi, lo
		}
		for y := lo; y <= hi; y++ {
			switch {
			case y == lo:
				rows[y].cells[c] = '+'
			case y == hi:
				rows[y].cells[c] = '+'
			default:
				if rows[y].cells[c] == ' ' {
					rows[y].cells[c] = '|'
				}
			}
		}
		top := minInt(t1, t2)
		bottom := maxInt(b1, b2)
		return top, bottom, (lo + hi) / 2, c
	}
	_, _, mid, end := draw(d.Root)
	// Root stem.
	for x := end; x <= width; x++ {
		if rows[mid].cells[x] == ' ' {
			rows[mid].cells[x] = '-'
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  0%s%.3g\n", gutter, "linkage:", strings.Repeat(" ", width-len(fmt.Sprintf("%.3g", maxH))), maxH)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", gutter, r.label, string(r.cells))
	}
	return b.String()
}

func bytesFill(n int, c byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
