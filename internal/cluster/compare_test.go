package cluster

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestCopheneticCorrelationIdenticalTrees(t *testing.T) {
	pts := [][]float64{{0}, {1}, {5}, {6}, {20}}
	d1, err := Cluster(pts, nil, Ward)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Cluster(pts, nil, Ward)
	if err != nil {
		t.Fatal(err)
	}
	items := []int{0, 1, 2, 3, 4}
	r, err := CopheneticCorrelation(d1, d2, items, items)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("identical trees should correlate at 1, got %v", r)
	}
}

func TestCopheneticCorrelationSimilarVsScrambled(t *testing.T) {
	r := rng.New(3)
	base := make([][]float64, 12)
	similar := make([][]float64, 12)
	for i := range base {
		x, y := r.Float64()*10, r.Float64()*10
		base[i] = []float64{x, y}
		similar[i] = []float64{x + (r.Float64()-0.5)*0.2, y + (r.Float64()-0.5)*0.2}
	}
	scrambled := make([][]float64, 12)
	for i := range scrambled {
		scrambled[i] = []float64{r.Float64() * 10, r.Float64() * 10}
	}
	dBase, _ := Cluster(base, nil, Ward)
	dSim, _ := Cluster(similar, nil, Ward)
	dScr, _ := Cluster(scrambled, nil, Ward)
	items := make([]int, 12)
	for i := range items {
		items[i] = i
	}
	rSim, err := CopheneticCorrelation(dBase, dSim, items, items)
	if err != nil {
		t.Fatal(err)
	}
	rScr, err := CopheneticCorrelation(dBase, dScr, items, items)
	if err != nil {
		t.Fatal(err)
	}
	if rSim < 0.9 {
		t.Fatalf("perturbed tree should correlate highly, got %v", rSim)
	}
	if rScr >= rSim {
		t.Fatalf("scrambled tree (%v) should correlate below the perturbed tree (%v)", rScr, rSim)
	}
}

func TestCopheneticCorrelationErrors(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	d, _ := Cluster(pts, nil, Ward)
	if _, err := CopheneticCorrelation(d, d, []int{0, 1}, []int{0}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := CopheneticCorrelation(d, d, []int{0, 1}, []int{0, 1}); err == nil {
		t.Fatal("fewer than 3 items must error")
	}
	if _, err := CopheneticCorrelation(d, d, []int{0, 1, 9}, []int{0, 1, 2}); err == nil {
		t.Fatal("out-of-range item must error")
	}
}
