package main

import (
	"errors"
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestParseFlagsDefaults(t *testing.T) {
	var buf strings.Builder
	cfg, err := parseFlags(nil, &buf)
	if err != nil {
		t.Fatalf("parseFlags() = %v; stderr:\n%s", err, buf.String())
	}
	if cfg.addr != ":8417" {
		t.Errorf("addr = %q, want :8417", cfg.addr)
	}
	if !cfg.trace {
		t.Error("trace should default to true")
	}
	if cfg.traceRing != 256 {
		t.Errorf("traceRing = %d, want 256", cfg.traceRing)
	}
	if cfg.traceSlow != 0 {
		t.Errorf("traceSlow = %v, want 0", cfg.traceSlow)
	}
	if cfg.pprofAddr != "" {
		t.Errorf("pprofAddr = %q, want empty", cfg.pprofAddr)
	}
	if cfg.logLevel != telemetry.LevelInfo {
		t.Errorf("logLevel = %v, want info", cfg.logLevel)
	}
	if cfg.drain != 30*time.Second {
		t.Errorf("drain = %v, want 30s", cfg.drain)
	}
	if !cfg.jobs {
		t.Error("jobs should default to true")
	}
	if cfg.maxJobs != 256 {
		t.Errorf("maxJobs = %d, want 256", cfg.maxJobs)
	}
	if cfg.jobWorkers != 2 {
		t.Errorf("jobWorkers = %d, want 2", cfg.jobWorkers)
	}
	if cfg.webhookTO != 5*time.Second {
		t.Errorf("webhookTO = %v, want 5s", cfg.webhookTO)
	}
}

// Jobs flags land in the config verbatim; -webhook-timeout accepts a
// negative duration because that is the documented way to disable
// webhook delivery entirely.
func TestParseFlagsJobs(t *testing.T) {
	var buf strings.Builder
	cfg, err := parseFlags([]string{
		"-jobs=false", "-max-jobs", "16", "-job-workers", "1",
		"-webhook-timeout", "-1s",
	}, &buf)
	if err != nil {
		t.Fatalf("parseFlags() = %v; stderr:\n%s", err, buf.String())
	}
	if cfg.jobs {
		t.Error("jobs = true, want false")
	}
	if cfg.maxJobs != 16 || cfg.jobWorkers != 1 {
		t.Errorf("maxJobs = %d, jobWorkers = %d", cfg.maxJobs, cfg.jobWorkers)
	}
	if cfg.webhookTO != -time.Second {
		t.Errorf("webhookTO = %v, want -1s", cfg.webhookTO)
	}
}

func TestParseFlagsValid(t *testing.T) {
	var buf strings.Builder
	cfg, err := parseFlags([]string{
		"-trace=false", "-trace-ring", "64", "-trace-slow", "1.5s",
		"-pprof-addr", "localhost:6060", "-log-level", "debug",
		"-store", "/tmp/s.json", "-drain", "5s",
	}, &buf)
	if err != nil {
		t.Fatalf("parseFlags() = %v; stderr:\n%s", err, buf.String())
	}
	if cfg.trace {
		t.Error("trace = true, want false")
	}
	if cfg.traceRing != 64 {
		t.Errorf("traceRing = %d, want 64", cfg.traceRing)
	}
	if cfg.traceSlow != 1500*time.Millisecond {
		t.Errorf("traceSlow = %v, want 1.5s", cfg.traceSlow)
	}
	if cfg.pprofAddr != "localhost:6060" {
		t.Errorf("pprofAddr = %q", cfg.pprofAddr)
	}
	if cfg.logLevel != telemetry.LevelDebug {
		t.Errorf("logLevel = %v, want debug", cfg.logLevel)
	}
	if cfg.storePath != "/tmp/s.json" || cfg.drain != 5*time.Second {
		t.Errorf("storePath = %q, drain = %v", cfg.storePath, cfg.drain)
	}
}

// TestParseFlagsInvalidDuration checks the contract main exits 2 on:
// a malformed duration is an error whose stderr output names the
// offending flag, so the operator sees which of a dozen duration
// flags to fix.
func TestParseFlagsInvalidDuration(t *testing.T) {
	for _, tc := range []struct {
		args []string
		flag string
	}{
		{[]string{"-trace-slow", "fast"}, "-trace-slow"},
		{[]string{"-drain", "10"}, "-drain"}, // bare number: missing unit
		{[]string{"-read-timeout", "xx"}, "-read-timeout"},
	} {
		var buf strings.Builder
		_, err := parseFlags(tc.args, &buf)
		if err == nil {
			t.Errorf("parseFlags(%v) succeeded, want error", tc.args)
			continue
		}
		if errors.Is(err, flag.ErrHelp) {
			t.Errorf("parseFlags(%v) = ErrHelp, want parse error", tc.args)
		}
		if !strings.Contains(buf.String(), tc.flag) {
			t.Errorf("parseFlags(%v) stderr does not name %s:\n%s", tc.args, tc.flag, buf.String())
		}
	}
}

// TestParseFlagsInvalidAdmission checks that negative admission
// limits are rejected at parse time (exit 2 in main) with stderr
// naming the offending flag, instead of configuring a nonsensical
// limiter.
func TestParseFlagsInvalidAdmission(t *testing.T) {
	for _, tc := range []struct {
		args []string
		flag string
	}{
		{[]string{"-rate-limit", "-1"}, "-rate-limit"},
		{[]string{"-burst", "-0.5"}, "-burst"},
		{[]string{"-max-inflight", "-2"}, "-max-inflight"},
		{[]string{"-max-queue", "-1"}, "-max-queue"},
		{[]string{"-request-timeout", "-3s"}, "-request-timeout"},
		{[]string{"-max-jobs", "-1"}, "-max-jobs"},
		{[]string{"-job-workers", "-2"}, "-job-workers"},
	} {
		var buf strings.Builder
		_, err := parseFlags(tc.args, &buf)
		if err == nil {
			t.Errorf("parseFlags(%v) succeeded, want error", tc.args)
			continue
		}
		if errors.Is(err, flag.ErrHelp) {
			t.Errorf("parseFlags(%v) = ErrHelp, want validation error", tc.args)
		}
		if !strings.Contains(buf.String(), tc.flag) {
			t.Errorf("parseFlags(%v) stderr does not name %s:\n%s", tc.args, tc.flag, buf.String())
		}
	}
}

// Valid admission flags land in the config verbatim.
func TestParseFlagsAdmission(t *testing.T) {
	var buf strings.Builder
	cfg, err := parseFlags([]string{
		"-rate-limit", "2.5", "-burst", "10",
		"-max-inflight", "32", "-max-queue", "64",
		"-request-timeout", "45s",
	}, &buf)
	if err != nil {
		t.Fatalf("parseFlags() = %v; stderr:\n%s", err, buf.String())
	}
	if cfg.rateLimit != 2.5 || cfg.burst != 10 {
		t.Errorf("rateLimit = %v, burst = %v", cfg.rateLimit, cfg.burst)
	}
	if cfg.maxInflt != 32 || cfg.maxQueue != 64 {
		t.Errorf("maxInflt = %d, maxQueue = %d", cfg.maxInflt, cfg.maxQueue)
	}
	if cfg.requestTO != 45*time.Second {
		t.Errorf("requestTO = %v, want 45s", cfg.requestTO)
	}
}

// Insight flags default to an enabled plane at a 5s cadence, land in
// the config verbatim, and reject negative values at parse time (exit
// 2 in main) with stderr naming the offending flag.
func TestParseFlagsInsight(t *testing.T) {
	var buf strings.Builder
	cfg, err := parseFlags(nil, &buf)
	if err != nil {
		t.Fatalf("parseFlags() = %v; stderr:\n%s", err, buf.String())
	}
	if !cfg.insight {
		t.Error("insight should default to true")
	}
	if cfg.insightInterval != 5*time.Second {
		t.Errorf("insightInterval = %v, want 5s", cfg.insightInterval)
	}
	if cfg.insightRing != 360 {
		t.Errorf("insightRing = %d, want 360", cfg.insightRing)
	}
	if cfg.sloLatencyMS != 500 {
		t.Errorf("sloLatencyMS = %d, want 500", cfg.sloLatencyMS)
	}

	cfg, err = parseFlags([]string{
		"-insight=false", "-insight-interval", "1s",
		"-insight-ring", "60", "-slo-latency-ms", "250",
	}, &buf)
	if err != nil {
		t.Fatalf("parseFlags() = %v; stderr:\n%s", err, buf.String())
	}
	if cfg.insight {
		t.Error("insight = true, want false")
	}
	if cfg.insightInterval != time.Second || cfg.insightRing != 60 || cfg.sloLatencyMS != 250 {
		t.Errorf("insightInterval = %v, insightRing = %d, sloLatencyMS = %d",
			cfg.insightInterval, cfg.insightRing, cfg.sloLatencyMS)
	}

	for _, tc := range []struct {
		args []string
		flag string
	}{
		{[]string{"-insight-interval", "-1s"}, "-insight-interval"},
		{[]string{"-insight-ring", "-8"}, "-insight-ring"},
		{[]string{"-slo-latency-ms", "-100"}, "-slo-latency-ms"},
	} {
		var buf strings.Builder
		_, err := parseFlags(tc.args, &buf)
		if err == nil {
			t.Errorf("parseFlags(%v) succeeded, want error", tc.args)
			continue
		}
		if !strings.Contains(buf.String(), tc.flag) {
			t.Errorf("parseFlags(%v) stderr does not name %s:\n%s", tc.args, tc.flag, buf.String())
		}
	}
}

func TestParseFlagsInvalidLogLevel(t *testing.T) {
	var buf strings.Builder
	_, err := parseFlags([]string{"-log-level", "loud"}, &buf)
	if err == nil {
		t.Fatal("parseFlags succeeded, want error")
	}
	if !strings.Contains(buf.String(), "-log-level") {
		t.Errorf("stderr does not name -log-level:\n%s", buf.String())
	}
}

func TestParseFlagsHelp(t *testing.T) {
	var buf strings.Builder
	_, err := parseFlags([]string{"-h"}, &buf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("parseFlags(-h) = %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(buf.String(), "-trace-slow") {
		t.Errorf("usage output missing -trace-slow:\n%s", buf.String())
	}
}
