// Command spec17d serves the reproduction's experiment suite over
// HTTP/JSON — the batch spec17 CLI turned into a long-running
// characterization service with result caching, request coalescing,
// and Prometheus metrics.
//
// Usage:
//
//	spec17d [-addr :8417] [-cache n] [-labs n] [-workers n] [-store file]
//
// Endpoints:
//
//	GET /v1/experiments                  catalog of experiment ids
//	GET /v1/experiments/{id}?instructions=N&warmup=M
//	GET /v1/report?instructions=N&warmup=M
//	GET /healthz
//	GET /metrics                         Prometheus text format
//
// See docs/SERVER.md for endpoint, caching, and metrics details.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8417", "listen address")
		cache     = flag.Int("cache", 512, "max cached experiment results (LRU)")
		labs      = flag.Int("labs", 4, "max resident fleet characterizations, one per fidelity (LRU)")
		workers   = flag.Int("workers", 2, "max concurrent lab computations")
		storePath = flag.String("store", "", "measurement-store snapshot file: loaded at boot (warm start), persisted on drain")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "spec17d: ", log.LstdFlags)

	// One metrics registry carries both the server's and the store's
	// instruments, so /metrics exposes spec17_store_* too.
	reg := metrics.NewRegistry()
	st, err := store.Open(store.Config{Path: *storePath, Metrics: reg, Log: logger})
	if err != nil {
		logger.Printf("warning: %v (starting cold)", err)
	}
	if *storePath != "" {
		logger.Printf("measurement store %s: %d records loaded", *storePath, st.Len())
	}

	s := server.New(server.Config{
		ResultCacheSize: *cache,
		LabCacheSize:    *labs,
		Workers:         *workers,
		Store:           st,
		Metrics:         reg,
		Log:             logger,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving on http://%s (catalog: /v1/experiments, metrics: /metrics)", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
		return
	case got := <-sig:
		logger.Printf("received %v, draining for up to %v", got, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := s.Shutdown(ctx)
	if err := saveStore(st, logger); err != nil {
		logger.Printf("persisting store: %v", err)
	}
	if shutdownErr != nil {
		logger.Printf("shutdown: %v", shutdownErr)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil {
		logger.Fatalf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "spec17d: drained, bye")
}

// saveStore persists the measurement store after the drain, so every
// measurement the process made warms the next one.
func saveStore(st *store.Store, logger *log.Logger) error {
	if st.Path() == "" {
		return nil
	}
	if err := st.Save(); err != nil {
		return err
	}
	logger.Printf("measurement store %s: %d records persisted", st.Path(), st.Len())
	return nil
}
