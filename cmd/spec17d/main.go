// Command spec17d serves the reproduction's experiment suite over
// HTTP/JSON — the batch spec17 CLI turned into a long-running
// characterization service with result caching, request coalescing,
// batch streaming, request tracing, and Prometheus metrics.
//
// Usage:
//
//	spec17d [-addr :8417] [-cache n] [-labs n] [-workers n]
//	        [-sim-workers n] [-batch-concurrency n]
//	        [-engine exact|analytic|auto] [-upgrade-workers n]
//	        [-store file] [-checkpoint d] [-drain d]
//	        [-read-header-timeout d] [-read-timeout d] [-idle-timeout d]
//	        [-rate-limit r] [-burst n] [-max-inflight n] [-max-queue n]
//	        [-request-timeout d]
//	        [-jobs] [-max-jobs n] [-job-workers n] [-webhook-timeout d]
//	        [-trace] [-trace-ring n] [-trace-slow d]
//	        [-insight] [-insight-interval d] [-insight-ring n]
//	        [-slo-latency-ms n]
//	        [-pprof-addr addr] [-log-level level]
//
// Endpoints:
//
//	GET  /v1                              discovery document
//	GET  /v1/experiments                  catalog of experiment ids (paginated)
//	GET  /v1/experiments/{id}?instructions=N&warmup=M
//	GET  /v1/report?instructions=N&warmup=M
//	GET  /v1/batch?experiments=a,b,c      NDJSON result stream
//	POST /v1/batch                        same, JSON body
//	POST /v1/jobs                         submit an async experiment sweep
//	GET  /v1/jobs                         list jobs (paginated)
//	GET  /v1/jobs/{id}                    job record and per-item progress
//	DEL  /v1/jobs/{id}                    cancel a job
//	GET  /v1/jobs/{id}/results            finished job's results, NDJSON
//	GET  /v1/jobs/{id}/events             job progress as SSE
//	GET  /v1/healthz                      liveness (503 once draining)
//	GET  /v1/status                       runtime introspection
//	GET  /v1/traces                       finished request traces
//	GET  /v1/metrics/history              sampled metric time series
//	GET  /v1/accuracy                     analytic-vs-exact drift totals
//	GET  /v1/events                       recorded anomaly events
//	GET  /healthz
//	GET  /metrics                         Prometheus text format
//
// See docs/API.md for the full endpoint reference, docs/JOBS.md for
// the async-job subsystem, docs/SERVER.md for caching and metrics
// details, and docs/OBSERVABILITY.md for tracing and logging.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/insight"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// daemonConfig is everything the flags decide.
type daemonConfig struct {
	addr       string
	cache      int
	labs       int
	workers    int
	simWorkers int
	batchConc  int
	eng        engine.Tier
	upgradeWks int
	storePath  string
	checkpoint time.Duration
	drain      time.Duration
	readHdrTO  time.Duration
	readTO     time.Duration
	idleTO     time.Duration

	rateLimit float64
	burst     float64
	maxInflt  int
	maxQueue  int
	requestTO time.Duration

	jobs       bool
	maxJobs    int
	jobWorkers int
	webhookTO  time.Duration

	trace     bool
	traceRing int
	traceSlow time.Duration

	insight         bool
	insightInterval time.Duration
	insightRing     int
	sloLatencyMS    int

	pprofAddr string
	logLevel  telemetry.Level
}

// parseFlags parses the daemon's command line. Errors (including an
// invalid duration or log level) are printed to stderr naming the
// offending flag, and the returned error tells main to exit 2 —
// except flag.ErrHelp, which exits 0.
func parseFlags(args []string, stderr io.Writer) (*daemonConfig, error) {
	cfg := &daemonConfig{}
	fs := flag.NewFlagSet("spec17d", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", ":8417", "listen address")
	fs.IntVar(&cfg.cache, "cache", 512, "max cached experiment results (LRU)")
	fs.IntVar(&cfg.labs, "labs", 4, "max resident fleet characterizations, one per fidelity (LRU)")
	fs.IntVar(&cfg.workers, "workers", 2, "max concurrent lab computations")
	fs.IntVar(&cfg.simWorkers, "sim-workers", 0, "max concurrent leaf simulations across all labs (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.batchConc, "batch-concurrency", 4, "max experiments one batch request evaluates at once")
	engFlag := fs.String("engine", "exact", "default measurement engine for requests without ?engine= (exact, analytic, auto)")
	fs.IntVar(&cfg.upgradeWks, "upgrade-workers", 2, "max concurrent background exact upgrades of analytically-served auto requests (-1 disables)")
	fs.StringVar(&cfg.storePath, "store", "", "measurement-store snapshot file: loaded at boot (warm start), persisted on shutdown")
	fs.DurationVar(&cfg.checkpoint, "checkpoint", 0, "background store-checkpoint interval (0 disables; requires -store)")
	fs.DurationVar(&cfg.drain, "drain", 30*time.Second, "graceful-shutdown drain timeout")
	fs.DurationVar(&cfg.readHdrTO, "read-header-timeout", 10*time.Second, "max time for a connection to send its request headers")
	fs.DurationVar(&cfg.readTO, "read-timeout", 0, "max time to read an entire request (0 disables; nonzero also cuts long batch streams)")
	fs.DurationVar(&cfg.idleTO, "idle-timeout", 2*time.Minute, "max keep-alive idle time between requests")
	fs.Float64Var(&cfg.rateLimit, "rate-limit", 0, "per-client admission tokens per second, one token = one default-fidelity experiment (0 disables)")
	fs.Float64Var(&cfg.burst, "burst", 0, "per-client admission bucket capacity (0 = max(rate-limit, 1))")
	fs.IntVar(&cfg.maxInflt, "max-inflight", 0, "max concurrently admitted compute requests across all clients (0 = unlimited)")
	fs.IntVar(&cfg.maxQueue, "max-queue", 0, "max simulations pending in the scheduler before shedding with 429 (0 = unbounded)")
	fs.DurationVar(&cfg.requestTO, "request-timeout", 0, "server-side deadline per compute request, and max scheduler queue wait (0 disables)")
	fs.BoolVar(&cfg.jobs, "jobs", true, "serve the async-job endpoints (/v1/jobs)")
	fs.IntVar(&cfg.maxJobs, "max-jobs", 256, "max retained job records; submitting past it evicts the oldest finished job")
	fs.IntVar(&cfg.jobWorkers, "job-workers", 2, "max jobs executing concurrently")
	fs.DurationVar(&cfg.webhookTO, "webhook-timeout", 5*time.Second, "per-attempt webhook delivery timeout (negative disables webhooks)")
	fs.BoolVar(&cfg.trace, "trace", true, "record per-request span trees, served at /v1/traces")
	fs.IntVar(&cfg.traceRing, "trace-ring", 256, "finished traces to retain in memory")
	fs.DurationVar(&cfg.traceSlow, "trace-slow", 0, "log the full span tree of traces slower than this (0 disables)")
	fs.BoolVar(&cfg.insight, "insight", true, "run the self-monitoring plane (/v1/metrics/history, /v1/accuracy, /v1/events)")
	fs.DurationVar(&cfg.insightInterval, "insight-interval", 5*time.Second, "insight sampling period")
	fs.IntVar(&cfg.insightRing, "insight-ring", 360, "history samples retained per metric series")
	fs.IntVar(&cfg.sloLatencyMS, "slo-latency-ms", 500, "per-request latency objective for SLO burn tracking, in milliseconds (0 disables)")
	fs.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it private)")
	logLevel := fs.String("log-level", "info", "minimum log level (debug, info, warn, error)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	lv, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "invalid value %q for flag -log-level: %v\n", *logLevel, err)
		fs.Usage()
		return nil, err
	}
	cfg.logLevel = lv
	tier, err := engine.ParseTier(*engFlag)
	if err != nil {
		fmt.Fprintf(stderr, "invalid value %q for flag -engine: %v\n", *engFlag, err)
		fs.Usage()
		return nil, err
	}
	cfg.eng = tier
	for _, check := range []struct {
		name string
		bad  bool
	}{
		{"rate-limit", cfg.rateLimit < 0},
		{"burst", cfg.burst < 0},
		{"max-inflight", cfg.maxInflt < 0},
		{"max-queue", cfg.maxQueue < 0},
		{"request-timeout", cfg.requestTO < 0},
		{"max-jobs", cfg.maxJobs < 0},
		{"job-workers", cfg.jobWorkers < 0},
		{"insight-interval", cfg.insightInterval < 0},
		{"insight-ring", cfg.insightRing < 0},
		{"slo-latency-ms", cfg.sloLatencyMS < 0},
	} {
		if check.bad {
			err := fmt.Errorf("must not be negative")
			fmt.Fprintf(stderr, "invalid value for flag -%s: %v\n", check.name, err)
			fs.Usage()
			return nil, err
		}
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		os.Exit(2)
	}

	logger := telemetry.NewLogger(os.Stderr, cfg.logLevel)

	// One metrics registry carries the server's, scheduler's, store's,
	// and tracer's instruments, so /metrics exposes spec17_store_*,
	// spec17_sched_*, and spec17_stage_* too.
	reg := metrics.NewRegistry()

	// The insight plane is created before the tracer and the store so
	// both can deliver their anomaly hooks (slow traces, checkpoint
	// failures) into its event ring; the store itself is attached
	// afterwards, once it exists.
	var plane *insight.Plane
	if cfg.insight {
		plane = insight.New(insight.Config{
			Metrics:   reg,
			Log:       logger,
			Interval:  cfg.insightInterval,
			Ring:      cfg.insightRing,
			EventRing: 256,
			SLO: insight.SLOConfig{
				Latency: time.Duration(cfg.sloLatencyMS) * time.Millisecond,
			},
		})
	}

	var tracer *telemetry.Tracer
	if cfg.trace {
		tcfg := telemetry.TracerConfig{
			Capacity:      cfg.traceRing,
			SlowThreshold: cfg.traceSlow,
			Metrics:       reg,
			Log:           logger,
		}
		if plane != nil {
			tcfg.OnSlow = plane.OnSlowTrace
		}
		tracer = telemetry.NewTracer(tcfg)
	}

	scfg := store.Config{Path: cfg.storePath, Metrics: reg, Log: logger.Std("store")}
	if plane != nil {
		scfg.OnCheckpointError = plane.OnCheckpointError
	}
	st, err := store.Open(scfg)
	if err != nil {
		logger.Warn("opening store; starting cold", "err", err)
	}
	if cfg.storePath != "" {
		logger.Info("measurement store loaded", "path", cfg.storePath, "records", st.Len())
	}
	if cfg.checkpoint > 0 {
		if cfg.storePath == "" {
			logger.Warn("-checkpoint without -store has nothing to persist")
		} else {
			stop := st.StartCheckpointing(cfg.checkpoint)
			defer stop()
			logger.Info("checkpointing store", "interval", cfg.checkpoint)
		}
	}

	if plane != nil {
		plane.AttachStore(st)
		plane.Start()
		defer plane.Stop()
		logger.Info("insight plane sampling", "interval", cfg.insightInterval,
			"ring", cfg.insightRing, "slo_latency_ms", cfg.sloLatencyMS)
	}

	if cfg.pprofAddr != "" {
		go servePprof(cfg.pprofAddr, logger)
	}

	s := server.New(server.Config{
		ResultCacheSize:   cfg.cache,
		LabCacheSize:      cfg.labs,
		Workers:           cfg.workers,
		SimWorkers:        cfg.simWorkers,
		BatchConcurrency:  cfg.batchConc,
		DefaultEngine:     cfg.eng,
		UpgradeWorkers:    cfg.upgradeWks,
		ReadHeaderTimeout: cfg.readHdrTO,
		ReadTimeout:       cfg.readTO,
		IdleTimeout:       cfg.idleTO,
		RateLimit:         cfg.rateLimit,
		Burst:             cfg.burst,
		MaxInFlight:       cfg.maxInflt,
		MaxQueue:          cfg.maxQueue,
		QueueWait:         cfg.requestTO,
		RequestTimeout:    cfg.requestTO,
		JobsDisabled:      !cfg.jobs,
		MaxJobs:           cfg.maxJobs,
		JobWorkers:        cfg.jobWorkers,
		WebhookTimeout:    cfg.webhookTO,
		Store:             st,
		Metrics:           reg,
		Log:               logger,
		Tracer:            tracer,
		Insight:           plane,
	})

	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		logger.Error("listen", "addr", cfg.addr, "err", err)
		os.Exit(1)
	}
	logger.Info("serving", "addr", l.Addr().String(),
		"tracing", tracer != nil, "catalog", "/v1/experiments", "metrics", "/metrics")

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil {
			// The listener died out from under us; persist what the
			// process measured before giving up.
			if serr := saveStore(st, logger); serr != nil {
				logger.Error("persisting store", "err", serr)
			}
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
		return
	case got := <-sig:
		logger.Info("draining", "signal", got.String(), "timeout", cfg.drain,
			"note", "signal again to force")
	}

	// Drain in the background; a second signal cuts it short with a
	// best-effort store save and an immediate close.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(ctx) }()

	var shutdownErr error
	select {
	case shutdownErr = <-shutdownDone:
	case got := <-sig:
		logger.Warn("forcing shutdown", "signal", got.String())
		if err := saveStore(st, logger); err != nil {
			logger.Error("persisting store", "err", err)
		}
		_ = s.Close()
		os.Exit(1)
	}

	if err := saveStore(st, logger); err != nil {
		logger.Error("persisting store", "err", err)
	}
	if shutdownErr != nil {
		logger.Error("shutdown", "err", shutdownErr)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, bye")
}

// servePprof serves net/http/pprof on its own listener, separate from
// the API address so profiling is never reachable through whatever
// exposes the service — an explicit mux rather than DefaultServeMux,
// so importing pprof cannot leak handlers onto the API.
func servePprof(addr string, logger *telemetry.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux,
		ReadHeaderTimeout: 10 * time.Second, MaxHeaderBytes: 64 << 10}
	logger.Info("pprof listening", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("pprof serve", "err", err)
	}
}

// saveStore persists the measurement store after the drain, so every
// measurement the process made warms the next one.
func saveStore(st *store.Store, logger *telemetry.Logger) error {
	if st.Path() == "" {
		return nil
	}
	if err := st.Save(); err != nil {
		return err
	}
	logger.Info("measurement store persisted", "path", st.Path(), "records", st.Len())
	return nil
}
