// Command spec17d serves the reproduction's experiment suite over
// HTTP/JSON — the batch spec17 CLI turned into a long-running
// characterization service with result caching, request coalescing,
// batch streaming, and Prometheus metrics.
//
// Usage:
//
//	spec17d [-addr :8417] [-cache n] [-labs n] [-workers n]
//	        [-sim-workers n] [-batch-concurrency n]
//	        [-store file] [-checkpoint d] [-drain d]
//	        [-read-header-timeout d] [-read-timeout d] [-idle-timeout d]
//
// Endpoints:
//
//	GET  /v1/experiments                  catalog of experiment ids
//	GET  /v1/experiments/{id}?instructions=N&warmup=M
//	GET  /v1/report?instructions=N&warmup=M
//	GET  /v1/batch?experiments=a,b,c      NDJSON result stream
//	POST /v1/batch                        same, JSON body
//	GET  /healthz
//	GET  /metrics                         Prometheus text format
//
// See docs/SERVER.md for endpoint, caching, and metrics details.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8417", "listen address")
		cache      = flag.Int("cache", 512, "max cached experiment results (LRU)")
		labs       = flag.Int("labs", 4, "max resident fleet characterizations, one per fidelity (LRU)")
		workers    = flag.Int("workers", 2, "max concurrent lab computations")
		simWorkers = flag.Int("sim-workers", 0, "max concurrent leaf simulations across all labs (0 = GOMAXPROCS)")
		batchConc  = flag.Int("batch-concurrency", 4, "max experiments one batch request evaluates at once")
		storePath  = flag.String("store", "", "measurement-store snapshot file: loaded at boot (warm start), persisted on shutdown")
		checkpoint = flag.Duration("checkpoint", 0, "background store-checkpoint interval (0 disables; requires -store)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		readHdrTO  = flag.Duration("read-header-timeout", 10*time.Second, "max time for a connection to send its request headers")
		readTO     = flag.Duration("read-timeout", 0, "max time to read an entire request (0 disables; nonzero also cuts long batch streams)")
		idleTO     = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time between requests")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "spec17d: ", log.LstdFlags)

	// One metrics registry carries the server's, scheduler's, and
	// store's instruments, so /metrics exposes spec17_store_* and
	// spec17_sched_* too.
	reg := metrics.NewRegistry()
	st, err := store.Open(store.Config{Path: *storePath, Metrics: reg, Log: logger})
	if err != nil {
		logger.Printf("warning: %v (starting cold)", err)
	}
	if *storePath != "" {
		logger.Printf("measurement store %s: %d records loaded", *storePath, st.Len())
	}
	if *checkpoint > 0 {
		if *storePath == "" {
			logger.Printf("warning: -checkpoint without -store has nothing to persist")
		} else {
			stop := st.StartCheckpointing(*checkpoint)
			defer stop()
			logger.Printf("checkpointing store every %v", *checkpoint)
		}
	}

	s := server.New(server.Config{
		ResultCacheSize:   *cache,
		LabCacheSize:      *labs,
		Workers:           *workers,
		SimWorkers:        *simWorkers,
		BatchConcurrency:  *batchConc,
		ReadHeaderTimeout: *readHdrTO,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
		Store:             st,
		Metrics:           reg,
		Log:               logger,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving on http://%s (catalog: /v1/experiments, metrics: /metrics)", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil {
			// The listener died out from under us; persist what the
			// process measured before giving up.
			if serr := saveStore(st, logger); serr != nil {
				logger.Printf("persisting store: %v", serr)
			}
			logger.Fatalf("serve: %v", err)
		}
		return
	case got := <-sig:
		logger.Printf("received %v, draining for up to %v (signal again to force)", got, *drain)
	}

	// Drain in the background; a second signal cuts it short with a
	// best-effort store save and an immediate close.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(ctx) }()

	var shutdownErr error
	select {
	case shutdownErr = <-shutdownDone:
	case got := <-sig:
		logger.Printf("received %v during drain, forcing shutdown", got)
		if err := saveStore(st, logger); err != nil {
			logger.Printf("persisting store: %v", err)
		}
		_ = s.Close()
		os.Exit(1)
	}

	if err := saveStore(st, logger); err != nil {
		logger.Printf("persisting store: %v", err)
	}
	if shutdownErr != nil {
		logger.Printf("shutdown: %v", shutdownErr)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil {
		logger.Fatalf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "spec17d: drained, bye")
}

// saveStore persists the measurement store after the drain, so every
// measurement the process made warms the next one.
func saveStore(st *store.Store, logger *log.Logger) error {
	if st.Path() == "" {
		return nil
	}
	if err := st.Save(); err != nil {
		return err
	}
	logger.Printf("measurement store %s: %d records persisted", st.Path(), st.Len())
	return nil
}
