// Command spec17 reproduces the tables and figures of "Wait of a
// Decade: Did SPEC CPU 2017 Broaden the Performance Horizon?"
// (HPCA 2018) on the synthetic measurement substrate.
//
// Usage:
//
//	spec17 [-exp id[,id...]] [-instructions n] [-warmup n] [-width n] [-store file] [-engine exact|analytic]
//
// Experiment ids: table1 table2 fig1 fig2 fig3 fig4 table5 fig5 fig6
// table6 fig7 fig8 table7 ratespeed fig9 fig10 table8 fig11 fig12
// fig13 table9, the extensions table9-extended rate-scaling
// tree-similarity noise, the ablations ablation-linkage
// ablation-weighting ablation-pcs subset-sweep, or "all" (default).
//
// -svg DIR writes every figure as an SVG file; -json FILE writes every
// result as one JSON document.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/plot"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		instrs    = flag.Int("instructions", 400_000, "measured instructions per workload per machine")
		warmup    = flag.Int("warmup", 0, "warmup instructions (default instructions/5)")
		parallel  = flag.Int("parallelism", 0, "max concurrent measurements (0 = GOMAXPROCS)")
		width     = flag.Int("width", 60, "plot width in columns")
		jsonOut   = flag.String("json", "", "write every experiment's result as JSON to this file ('-' = stdout) and exit")
		svgDir    = flag.String("svg", "", "write the paper's figures as SVG files into this directory and exit")
		storePath = flag.String("store", "", "measurement-store snapshot file: loaded before measuring, persisted on exit")
		engFlag   = flag.String("engine", "exact", "measurement engine: exact (trace-driven simulation) or analytic (closed-form estimator)")
	)
	flag.Parse()

	// "auto" is a serving policy (analytic now, exact in the
	// background); a one-shot batch run has no background to upgrade in,
	// so the CLI only accepts the two concrete tiers.
	tier, err := engine.ParseTier(*engFlag)
	if err != nil || tier == engine.TierAuto {
		fmt.Fprintf(os.Stderr, "spec17: -engine=%q: must be exact or analytic\n", *engFlag)
		os.Exit(2)
	}
	var eng engine.Engine
	if tier == engine.TierAnalytic {
		eng = engine.Analytic{}
	}

	opts := machine.RunOptions{
		Instructions:       *instrs,
		WarmupInstructions: *warmup,
		Parallelism:        *parallel,
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "spec17: %v\n", err)
		os.Exit(2)
	}

	// Diagnostics (store warnings, persist failures) go through the
	// structured logger; experiment results stay plain stdout.
	logger := telemetry.NewLogger(os.Stderr, telemetry.LevelInfo)

	st, err := store.Open(store.Config{Path: *storePath, Log: logger.Std("store")})
	if err != nil {
		logger.Warn("opening store; starting cold", "err", err)
	}
	// One scheduler bounds every simulation the process runs —
	// including the out-of-characterization measurements (sensitivity
	// sweeps, replicas, multi-copy runs) the per-characterization
	// parallelism option never covered.
	// and no queue bounds: a local batch run wants every measurement it
	// asked for, however long the queue, unlike the daemon's shed-early
	// policy.
	pool := sched.NewPoolWith(sched.PoolConfig{Workers: *parallel})
	lab := experiments.NewLabWithEngine(opts, st, pool.Queue(0), eng)

	if err := run(lab, *exp, *width, *jsonOut, *svgDir); err != nil {
		// Persist what was measured even on failure: the next run
		// resumes from it.
		if serr := st.Save(); serr != nil {
			logger.Error("persisting store", "err", serr)
		}
		logger.Error("run failed", "err", err)
		os.Exit(1)
	}
	if err := st.Save(); err != nil {
		logger.Error("persisting store", "err", err)
		os.Exit(1)
	}
}

func run(lab *experiments.Lab, exp string, width int, jsonOut, svgDir string) error {
	if jsonOut != "" {
		return writeJSONReport(lab, jsonOut)
	}
	if svgDir != "" {
		return writeSVGs(lab, svgDir)
	}

	runners := textRunners()
	var ids []string
	if exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "spec17: unknown experiment %q\nvalid experiments:\n", id)
				for _, known := range experiments.SortedIDs() {
					fmt.Fprintf(os.Stderr, "  %s\n", known)
				}
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		if err := runners[id](lab, width); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println()
	}
	return nil
}

// textRunners maps every registry experiment id to its terminal
// renderer. The ids and ordering come from experiments.Registry —
// the same identity spec17d serves over HTTP — and a test asserts
// the two sets stay equal.
func textRunners() map[string]func(*experiments.Lab, int) error {
	return map[string]func(*experiments.Lab, int) error{
		"table1":    runTable1,
		"table2":    runTable2,
		"fig1":      runFig1,
		"fig2":      runDendro(experiments.Fig2, "Figure 2: SPECspeed INT dendrogram"),
		"fig3":      runDendro(experiments.Fig3, "Figure 3: SPECspeed FP dendrogram"),
		"fig4":      runDendro(experiments.Fig4, "Figure 4: SPECrate FP dendrogram"),
		"table5":    runTable5,
		"fig5":      runValidation(experiments.Fig5, "Figure 5: INT subset validation"),
		"fig6":      runValidation(experiments.Fig6, "Figure 6: FP subset validation"),
		"table6":    runTable6,
		"fig7":      runInputSets(experiments.Fig7, "Figure 7: INT input-set similarity"),
		"fig8":      runInputSets(experiments.Fig8, "Figure 8: FP input-set similarity"),
		"table7":    runTable7,
		"ratespeed": runRateSpeed,
		"fig9":      runFig9,
		"fig10":     runFig10,
		"table8":    runTable8,
		"fig11":     runFig11,
		"fig12":     runFig12,
		"fig13":     runFig13,
		"table9":    runTable9,
		// Ablations of the methodology's design choices (not in the paper).
		"ablation-linkage":   runAblateLinkage,
		"ablation-weighting": runAblateWeighting,
		"ablation-pcs":       runAblatePCs,
		"subset-sweep":       runSubsetSweep,
		"table9-extended":    runTable9Extended,
		"rate-scaling":       runRateScaling,
		"tree-similarity":    runTreeSimilarity,
		"noise":              runNoise,
	}
}

func header(title string) {
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

func runTable1(lab *experiments.Lab, _ int) error {
	rows, err := experiments.Table1(lab)
	if err != nil {
		return err
	}
	header("Table I: dynamic instruction count, instruction mix, and CPI (Skylake)")
	fmt.Printf("%-18s %-14s %10s %7s %7s %8s %7s %9s\n",
		"benchmark", "suite", "icount(B)", "load%", "store%", "branch%", "CPI", "paper CPI")
	for _, r := range rows {
		fmt.Printf("%-18s %-14s %10.0f %7.2f %7.2f %8.2f %7.2f %9.2f\n",
			r.Name, r.Suite, r.ICountB, r.PctLoad, r.PctStore, r.PctBranch, r.CPI, r.PaperCPI)
	}
	return nil
}

func runTable2(lab *experiments.Lab, _ int) error {
	rows, err := experiments.Table2(lab)
	if err != nil {
		return err
	}
	header("Table II: metric ranges per sub-suite (Skylake)")
	fmt.Printf("%-12s %-14s %10s %10s\n", "metric", "suite", "min", "max")
	for _, r := range rows {
		fmt.Printf("%-12s %-14s %10.2f %10.2f\n", r.Metric, r.Suite, r.Min, r.Max)
	}
	return nil
}

func runFig1(lab *experiments.Lab, width int) error {
	rows, err := experiments.Fig1(lab)
	if err != nil {
		return err
	}
	header("Figure 1: CPI stacks of the SPECrate benchmarks (Skylake)")
	fmt.Print(experiments.RenderStacks(rows, width))
	return nil
}

func runDendro(f func(*experiments.Lab) (*experiments.DendrogramResult, error), title string) func(*experiments.Lab, int) error {
	return func(lab *experiments.Lab, width int) error {
		d, err := f(lab)
		if err != nil {
			return err
		}
		header(title)
		fmt.Printf("%d PCs retained (Kaiser), %.0f%% of variance; most distinct: %s\n\n",
			d.NumPCs, d.VarCovered*100, d.MostDistinct)
		fmt.Print(d.Similarity.Dendrogram.Render(width))
		return nil
	}
}

func runTable5(lab *experiments.Lab, _ int) error {
	rows, err := experiments.Table5(lab)
	if err != nil {
		return err
	}
	header("Table V: representative 3-benchmark subsets")
	for _, r := range rows {
		fmt.Printf("%-14s  subset: %s\n", r.Suite, strings.Join(r.Subset, ", "))
		fmt.Printf("%-14s  cut at linkage %.2f, simulation-time reduction %.1fx\n",
			"", r.CutHeight, r.SimTimeReduction)
		for i, cl := range r.Clusters {
			fmt.Printf("%-14s    cluster %d: %s\n", "", i+1, strings.Join(cl, ", "))
		}
	}
	return nil
}

func runValidation(f func(*experiments.Lab) ([]*experiments.ValidationRow, error), title string) func(*experiments.Lab, int) error {
	return func(lab *experiments.Lab, _ int) error {
		rows, err := f(lab)
		if err != nil {
			return err
		}
		header(title)
		for _, r := range rows {
			fmt.Printf("%s — subset %s\n", r.Suite, strings.Join(r.Subset, ", "))
			var systems []string
			for s := range r.Identified.PerSystem {
				systems = append(systems, s)
			}
			sort.Strings(systems)
			for _, s := range systems {
				fmt.Printf("  %-22s error %5.1f%%\n", s, r.Identified.PerSystem[s]*100)
			}
			fmt.Printf("  %-22s avg %6.1f%%  max %5.1f%%\n", "overall",
				r.Identified.Avg*100, r.Identified.Max*100)
		}
		return nil
	}
}

func runTable6(lab *experiments.Lab, _ int) error {
	rows, err := experiments.Table6(lab)
	if err != nil {
		return err
	}
	header("Table VI: identified subsets vs random subsets (avg error)")
	fmt.Print(experiments.RenderTable6(rows))
	return nil
}

func runInputSets(f func(*experiments.Lab) (*experiments.InputSetResult, error), title string) func(*experiments.Lab, int) error {
	return func(lab *experiments.Lab, width int) error {
		res, err := f(lab)
		if err != nil {
			return err
		}
		header(title)
		fmt.Printf("%d PCs retained, %.0f%% of variance\n\n", res.NumPCs, res.VarCovered*100)
		fmt.Print(res.Similarity.Dendrogram.Render(width))
		fmt.Println("\ninput-set cohesion (max within-benchmark distance / median pairwise):")
		var names []string
		for n := range res.Cohesion {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-18s %.2f\n", n, res.Cohesion[n])
		}
		return nil
	}
}

func runTable7(lab *experiments.Lab, _ int) error {
	rows, err := experiments.Table7(lab)
	if err != nil {
		return err
	}
	header("Table VII: representative input sets")
	for _, r := range rows {
		fmt.Printf("  %-18s input set %d\n", r.Benchmark, r.Input)
	}
	return nil
}

func runRateSpeed(lab *experiments.Lab, _ int) error {
	rows, err := experiments.RateSpeed(lab)
	if err != nil {
		return err
	}
	header("Section IV-D: rate vs speed similarity (sorted by distance)")
	for _, r := range rows {
		mark := ""
		if r.Divergent {
			mark = "  <- divergent"
		}
		fmt.Printf("  %-12s %6.2f%s\n", r.Base, r.Distance, mark)
	}
	return nil
}

func runFig9(lab *experiments.Lab, width int) error {
	res, err := experiments.Fig9(lab)
	if err != nil {
		return err
	}
	header("Figure 9: CPU2017 in the branch-behaviour PC space")
	fmt.Print(experiments.RenderScatter(res, width, 20))
	return nil
}

func runFig10(lab *experiments.Lab, width int) error {
	dc, ic, err := experiments.Fig10(lab)
	if err != nil {
		return err
	}
	header("Figure 10a: data-cache PC space")
	fmt.Print(experiments.RenderScatter(dc, width, 20))
	header("Figure 10b: instruction-cache PC space")
	fmt.Print(experiments.RenderScatter(ic, width, 20))
	return nil
}

func runTable8(lab *experiments.Lab, _ int) error {
	rows, err := experiments.Table8(lab)
	if err != nil {
		return err
	}
	header("Table VIII: application domains and covering benchmarks")
	for _, r := range rows {
		fmt.Printf("%-28s run: %s\n", r.Domain, strings.Join(r.Recommended, ", "))
	}
	return nil
}

func runFig11(lab *experiments.Lab, _ int) error {
	planes, uncovered, err := experiments.Fig11(lab)
	if err != nil {
		return err
	}
	header("Figure 11: CPU2017 vs CPU2006 workload-space coverage")
	for _, pl := range planes {
		fmt.Printf("  %-8s hull area 2017 %7.1f | 2006 %7.1f | CPU2017 outside CPU2006: %4.0f%%\n",
			pl.Plane, pl.Area2017, pl.Area2006, pl.FracOutside*100)
	}
	fmt.Printf("  CPU2006 benchmarks not covered by CPU2017: %s\n", strings.Join(uncovered, ", "))
	return nil
}

func runFig12(lab *experiments.Lab, width int) error {
	cov, scatter, err := experiments.Fig12(lab)
	if err != nil {
		return err
	}
	header("Figure 12: power-characteristic PC space (RAPL machines)")
	fmt.Printf("  hull area 2017 %.1f | 2006 %.1f | outside: %.0f%%\n\n",
		cov.Area2017, cov.Area2006, cov.FracOutside*100)
	fmt.Print(experiments.RenderScatter(scatter, width, 18))
	return nil
}

func runFig13(lab *experiments.Lab, width int) error {
	res, err := experiments.Fig13(lab)
	if err != nil {
		return err
	}
	header("Figure 13: CPU2017 vs EDA, graph, and database workloads")
	fmt.Print(res.Similarity.Dendrogram.Render(width))
	fmt.Println("\nnearest CPU2017 benchmark (distance / median pairwise):")
	var names []string
	for _, p := range workloads.Emerging() {
		names = append(names, p.Name)
	}
	for _, n := range names {
		fmt.Printf("  %-12s -> %-18s %.2f\n", n, res.NearestCPU2017[n], res.NormDistance[n])
	}
	return nil
}

func runAblateLinkage(lab *experiments.Lab, _ int) error {
	rows, err := experiments.AblateLinkage(lab)
	if err != nil {
		return err
	}
	header("Ablation: linkage method vs subset quality")
	fmt.Printf("%-14s %-9s %7s  %-22s %s\n", "suite", "linkage", "error", "most distinct", "subset")
	for _, r := range rows {
		fmt.Printf("%-14s %-9s %6.1f%%  %-22s %s\n",
			r.Suite, r.Method, r.AvgError*100, r.MostDistinct, strings.Join(r.Subset, ", "))
	}
	return nil
}

func runAblateWeighting(lab *experiments.Lab, _ int) error {
	rows, err := experiments.AblateScoreWeighting(lab)
	if err != nil {
		return err
	}
	header("Ablation: sqrt-eigenvalue weighting of PC scores")
	for _, r := range rows {
		fmt.Printf("%-14s weighted: %-55s\n", r.Suite, strings.Join(r.WeightedSubset, ", "))
		fmt.Printf("%-14s unweighted: %-53s agree=%v\n", "", strings.Join(r.UnweightedSubset, ", "), r.Agree)
	}
	return nil
}

func runAblatePCs(lab *experiments.Lab, _ int) error {
	rows, err := experiments.AblatePCSelection(lab)
	if err != nil {
		return err
	}
	header("Ablation: Kaiser criterion vs 90% variance target")
	fmt.Printf("%-14s %10s %12s %13s\n", "suite", "Kaiser PCs", "90%-var PCs", "subsets agree")
	for _, r := range rows {
		fmt.Printf("%-14s %10d %12d %13v\n", r.Suite, r.KaiserPCs, r.VariancePCs, r.SubsetsAgree)
	}
	return nil
}

func runSubsetSweep(lab *experiments.Lab, _ int) error {
	rows, err := experiments.SubsetSizeSweep(lab, 6)
	if err != nil {
		return err
	}
	header("Subset-size sweep: validation error and time saving vs k")
	fmt.Printf("%-14s %3s %8s %12s\n", "suite", "k", "error", "time saving")
	for _, r := range rows {
		fmt.Printf("%-14s %3d %7.1f%% %11.1fx\n", r.Suite, r.K, r.AvgError*100, r.SimTimeReduction)
	}
	return nil
}

func runRateScaling(lab *experiments.Lab, _ int) error {
	rows, err := experiments.RateScaling(lab, nil, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	header("SPECrate scaling: throughput vs concurrent copies (Skylake, shared LLC)")
	fmt.Printf("%-18s %6s %12s %11s %14s\n", "benchmark", "copies", "throughput", "efficiency", "L3 MPKI/copy")
	for _, r := range rows {
		fmt.Printf("%-18s %6d %12.3f %10.0f%% %14.2f\n",
			r.Benchmark, r.Copies, r.Throughput, r.Efficiency*100, r.L3MPKIPerCopy)
	}
	return nil
}

func runNoise(lab *experiments.Lab, _ int) error {
	rows, err := experiments.MeasurementNoise(lab, nil, 5)
	if err != nil {
		return err
	}
	header("Sampling noise: metric variation across independent trace samples")
	fmt.Printf("%-18s %8s   per-metric CV\n", "benchmark", "max CV")
	for _, r := range rows {
		fmt.Printf("%-18s %7.1f%%   ", r.Benchmark, r.MaxCV*100)
		for _, m := range []string{"l1d_mpki", "l2d_mpki", "l3_mpki", "l1i_mpki", "branch_mpki", "dtlb_mpmi"} {
			fmt.Printf("%s=%.1f%% ", m, r.CV[m]*100)
		}
		fmt.Println()
	}
	return nil
}

func runTreeSimilarity(lab *experiments.Lab, _ int) error {
	rows, err := experiments.RateSpeedTreeSimilarity(lab)
	if err != nil {
		return err
	}
	header("Dendrogram similarity: rate vs speed (cophenetic correlation)")
	for _, r := range rows {
		fmt.Printf("%-20s r = %.3f over %d shared families\n", r.Pair, r.Correlation, len(r.Families))
	}
	return nil
}

func runTable9Extended(lab *experiments.Lab, _ int) error {
	tables, err := experiments.Table9Extended(lab)
	if err != nil {
		return err
	}
	header("Extended sensitivity: all hardware structures")
	for _, t := range tables {
		fmt.Printf("%s:\n", t.Structure)
		fmt.Printf("  High:   %s\n", strings.Join(t.High, ", "))
		fmt.Printf("  Medium: %s\n", strings.Join(t.Medium, ", "))
		fmt.Printf("  Low:    %s\n", strings.Join(t.Low, ", "))
	}
	return nil
}

func runTable9(lab *experiments.Lab, _ int) error {
	tables, err := experiments.Table9(lab)
	if err != nil {
		return err
	}
	header("Table IX: sensitivity to branch predictor, L1 D-cache, and D-TLB configuration")
	for _, t := range tables {
		fmt.Printf("%s:\n", t.Structure)
		fmt.Printf("  High:   %s\n", strings.Join(t.High, ", "))
		fmt.Printf("  Medium: %s\n", strings.Join(t.Medium, ", "))
		fmt.Printf("  Low:    %s\n", strings.Join(t.Low, ", "))
	}
	return nil
}

func writeJSONReport(lab *experiments.Lab, path string) error {
	report, err := experiments.BuildReport(lab)
	if err != nil {
		return err
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return report.WriteJSON(w)
}

// writeSVGs renders every figure of the paper into dir.
func writeSVGs(lab *experiments.Lab, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, name))
		return f.Close()
	}

	// Figure 1: CPI stacks.
	stacks, err := experiments.Fig1(lab)
	if err != nil {
		return err
	}
	bars := make([]plot.StackedBar, 0, len(stacks))
	for _, r := range stacks {
		bars = append(bars, plot.StackedBar{Label: r.Name, Stack: r.Stack})
	}
	if err := write("fig1-cpi-stacks.svg", func(w *os.File) error {
		return plot.CPIBars(w, bars, plot.BarsOptions{Title: "Figure 1: CPI stacks (SPECrate, Skylake)"})
	}); err != nil {
		return err
	}

	// Dendrogram figures.
	dendros := []struct {
		name, title string
		get         func(*experiments.Lab) (*experiments.DendrogramResult, error)
	}{
		{"fig2-speed-int.svg", "Figure 2: SPECspeed INT", experiments.Fig2},
		{"fig3-speed-fp.svg", "Figure 3: SPECspeed FP", experiments.Fig3},
		{"fig4-rate-fp.svg", "Figure 4: SPECrate FP", experiments.Fig4},
		{"rate-int.svg", "SPECrate INT (not shown in the paper)", experiments.RateINTDendrogram},
	}
	for _, d := range dendros {
		res, err := d.get(lab)
		if err != nil {
			return err
		}
		if err := write(d.name, func(w *os.File) error {
			return plot.Dendrogram(w, res.Similarity.Dendrogram, plot.DendrogramOptions{Title: d.title})
		}); err != nil {
			return err
		}
	}

	// Input-set dendrograms (Figures 7 and 8).
	for _, d := range []struct {
		name, title string
		get         func(*experiments.Lab) (*experiments.InputSetResult, error)
	}{
		{"fig7-input-sets-int.svg", "Figure 7: INT input sets", experiments.Fig7},
		{"fig8-input-sets-fp.svg", "Figure 8: FP input sets", experiments.Fig8},
	} {
		res, err := d.get(lab)
		if err != nil {
			return err
		}
		if err := write(d.name, func(w *os.File) error {
			return plot.Dendrogram(w, res.Similarity.Dendrogram, plot.DendrogramOptions{Title: d.title})
		}); err != nil {
			return err
		}
	}

	// Scatter figures.
	fig9, err := experiments.Fig9(lab)
	if err != nil {
		return err
	}
	if err := write("fig9-branch-space.svg", func(w *os.File) error {
		return plot.Scatter(w, []plot.Series{{
			Name: "CPU2017", Points: fig9.Points, Labels: fig9.Labels,
		}}, plot.ScatterOptions{
			Title:  "Figure 9: branch-behaviour PC space",
			XLabel: "PC1", YLabel: "PC2", PointLabels: true,
		})
	}); err != nil {
		return err
	}
	dc, ic, err := experiments.Fig10(lab)
	if err != nil {
		return err
	}
	for _, sc := range []struct {
		name, title string
		res         *experiments.ScatterResult
	}{
		{"fig10a-dcache-space.svg", "Figure 10a: data-cache PC space", dc},
		{"fig10b-icache-space.svg", "Figure 10b: instruction-cache PC space", ic},
	} {
		if err := write(sc.name, func(w *os.File) error {
			return plot.Scatter(w, []plot.Series{{
				Name: "CPU2017", Points: sc.res.Points, Labels: sc.res.Labels,
			}}, plot.ScatterOptions{
				Title: sc.title, XLabel: "PC1", YLabel: "PC2", PointLabels: true,
			})
		}); err != nil {
			return err
		}
	}

	// Figure 11: coverage planes with hulls.
	planes, _, err := experiments.Fig11(lab)
	if err != nil {
		return err
	}
	for i, pl := range planes {
		name := fmt.Sprintf("fig11-%s.svg", strings.ToLower(pl.Plane))
		title := fmt.Sprintf("Figure 11: CPU2017 vs CPU2006 (%s)", pl.Plane)
		plane := planes[i]
		if err := write(name, func(w *os.File) error {
			return plot.Scatter(w, []plot.Series{
				{Name: "CPU2017", Points: plane.Points2017, Hull: true},
				{Name: "CPU2006", Points: plane.Points2006, Hull: true},
			}, plot.ScatterOptions{Title: title, XLabel: "PC (x)", YLabel: "PC (y)"})
		}); err != nil {
			return err
		}
	}

	// Figure 12: power space.
	cov, _, err := experiments.Fig12(lab)
	if err != nil {
		return err
	}
	if err := write("fig12-power-space.svg", func(w *os.File) error {
		return plot.Scatter(w, []plot.Series{
			{Name: "CPU2017", Points: cov.Points2017, Hull: true},
			{Name: "CPU2006", Points: cov.Points2006, Hull: true},
		}, plot.ScatterOptions{
			Title:  "Figure 12: power-characteristic PC space",
			XLabel: "PC1 (DRAM power)", YLabel: "PC2 (core power)",
		})
	}); err != nil {
		return err
	}

	// Figure 13: emerging-workload dendrogram.
	em, err := experiments.Fig13(lab)
	if err != nil {
		return err
	}
	return write("fig13-emerging.svg", func(w *os.File) error {
		return plot.Dendrogram(w, em.Similarity.Dendrogram, plot.DendrogramOptions{
			Title: "Figure 13: CPU2017 vs EDA, graph, database",
		})
	})
}
