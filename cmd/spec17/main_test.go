package main

import (
	"testing"

	"repro/internal/experiments"
)

// TestRunnersMatchRegistry pins the CLI's renderer set to the
// experiment registry: every servable experiment has a text renderer,
// and no renderer exists for an id the registry doesn't know.
func TestRunnersMatchRegistry(t *testing.T) {
	runners := textRunners()
	for _, id := range experiments.IDs() {
		if runners[id] == nil {
			t.Errorf("registry id %q has no text renderer", id)
		}
	}
	for id := range runners {
		if _, ok := experiments.Lookup(id); !ok {
			t.Errorf("renderer %q has no registry entry", id)
		}
	}
}
