// Command characterize runs the paper's characterization + similarity
// methodology on an arbitrary workload list and machine fleet — the
// tool a researcher would use to pick a benchmark subset for their own
// pre-silicon study.
//
// Examples:
//
//	characterize -workloads cpu2017                 # all 43 on the Table IV fleet
//	characterize -workloads 505.mcf_r,541.leela_r   # a custom list
//	characterize -dump-machines > fleet.json        # built-in fleet as JSON
//	characterize -machines fleet.json -subset 5     # custom fleet, 5-way subset
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/machine"
	"repro/internal/workloads"
)

func main() {
	var (
		wl      = flag.String("workloads", "cpu2017", "cpu2017 | cpu2006 | emerging | all | comma-separated names")
		machs   = flag.String("machines", "", "JSON machine-config file (default: built-in Table IV fleet)")
		dump    = flag.Bool("dump-machines", false, "write the built-in fleet as JSON to stdout and exit")
		instrs  = flag.Int("instructions", 200_000, "measured instructions per workload per machine")
		subsetK = flag.Int("subset", 3, "representative subset size (0 = skip)")
		width   = flag.Int("width", 60, "dendrogram width in columns")
		csvOut  = flag.String("csv", "", "also write the raw metric matrix as CSV to this file")
	)
	flag.Parse()

	if *dump {
		fleet, err := machine.Fleet()
		if err != nil {
			fatal(err)
		}
		if err := machine.WriteConfigs(os.Stdout, fleet); err != nil {
			fatal(err)
		}
		return
	}

	fleet, err := loadFleet(*machs)
	if err != nil {
		fatal(err)
	}
	entries, err := loadEntries(*wl)
	if err != nil {
		fatal(err)
	}

	opts := machine.RunOptions{Instructions: *instrs}
	if err := opts.Validate(); err != nil {
		fatal(err)
	}

	// Ctrl-C abandons the remaining measurements instead of hanging.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "characterizing %d workloads on %d machines...\n", len(entries), len(fleet))
	char, err := core.Characterize(ctx, entries, fleet, opts)
	if err != nil {
		fatal(err)
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := char.WriteCSV(f, nil, nil); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvOut)
	}

	// Headline metrics on the first machine.
	first := fleet[0].Name()
	fmt.Printf("metrics on %s:\n", first)
	fmt.Printf("  %-20s %8s %8s %8s %8s %8s %8s\n",
		"workload", "l1d", "l2d", "l3", "l1i", "brmpki", "dtlbpmi")
	for _, label := range char.Labels {
		s, err := char.Sample(label, first)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-20s %8.2f %8.2f %8.2f %8.2f %8.2f %8.0f\n", label,
			s.MustValue(counters.L1DMPKI), s.MustValue(counters.L2DMPKI),
			s.MustValue(counters.L3MPKI), s.MustValue(counters.L1IMPKI),
			s.MustValue(counters.BranchMPKI), s.MustValue(counters.DTLBMPMI))
	}

	if len(char.Labels) < 2 {
		return
	}
	sim, err := char.Similarity(core.DefaultSimilarityOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d PCs retained (Kaiser), %.0f%% of variance\n\n",
		sim.NumPCs, sim.PCA.CumVarExplained[sim.NumPCs-1]*100)
	fmt.Print(sim.Dendrogram.Render(*width))

	if *subsetK > 0 && *subsetK <= len(char.Labels) {
		res := sim.Subset(*subsetK)
		fmt.Printf("\nrepresentative subset (k=%d): %s\n",
			*subsetK, strings.Join(res.Representatives, ", "))
		for i, cl := range res.Clusters {
			fmt.Printf("  cluster %d: %s\n", i+1, strings.Join(cl, ", "))
		}
	}
}

func loadFleet(path string) ([]*machine.Machine, error) {
	if path == "" {
		return machine.Fleet()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return machine.ParseConfigs(f)
}

func loadEntries(spec string) ([]core.Entry, error) {
	var profiles []workloads.Profile
	switch spec {
	case "cpu2017":
		profiles = workloads.CPU2017()
	case "cpu2006":
		profiles = workloads.CPU2006()
	case "emerging":
		profiles = workloads.Emerging()
	case "all":
		profiles = workloads.All()
	default:
		for _, name := range strings.Split(spec, ",") {
			p, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
	}
	entries := make([]core.Entry, 0, len(profiles))
	for _, p := range profiles {
		entries = append(entries, core.Entry{Label: p.Name, Workload: p.Workload()})
	}
	return entries, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
	os.Exit(1)
}
