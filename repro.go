// Package repro is a from-scratch Go reproduction of "Wait of a
// Decade: Did SPEC CPU 2017 Broaden the Performance Horizon?"
// (Panda, Song, Dean, John — HPCA 2018): a benchmark characterization,
// redundancy, and subsetting study of the SPEC CPU2017 suite.
//
// The library has three layers:
//
//   - A measurement substrate replacing the paper's hardware: a
//     deterministic synthetic-trace generator (internal/trace) driven
//     by a profile database of all 43 CPU2017 benchmarks, the CPU2006
//     suite, and the emerging EDA/graph/database workloads
//     (internal/workloads), executed on models of the paper's seven
//     commercial machines (internal/machine) composed of cache, TLB,
//     and branch-predictor simulators.
//
//   - The paper's methodology (internal/core): principal component
//     analysis under the Kaiser criterion, hierarchical clustering,
//     dendrogram subsetting, subset validation against a synthetic
//     SPEC results database, input-set selection, rate/speed
//     comparison, coverage analysis, and configuration-sensitivity
//     classification.
//
//   - One reproduction function per table and figure of the paper's
//     evaluation (internal/experiments), re-exported here.
//
// Everything is standard-library only and bit-for-bit deterministic.
// The quickest start:
//
//	lab := repro.NewLab(repro.FastRunOptions())
//	table5, err := repro.Table5(lab)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every experiment.
package repro

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/store"
	"repro/internal/workloads"
)

// Lab owns the shared fleet characterization all experiments reuse.
// Create one with NewLab and pass it to every experiment; the
// expensive simulation happens once, on first use.
type Lab = experiments.Lab

// RunOptions control simulation fidelity (instructions measured per
// workload per machine).
type RunOptions = machine.RunOptions

// NewLab returns a Lab measuring at the given fidelity. The zero
// options give the default 400k measured instructions per run.
func NewLab(opts RunOptions) *Lab { return experiments.NewLab(opts) }

// Store is a content-addressed, persistent measurement store. Labs
// backed by one (NewLabWithStore) never measure the same (machine,
// workload, options) pair twice — in one process or, with a snapshot
// path, across processes ("warm starts"). See docs/STORE.md.
type Store = store.Store

// StoreConfig configures a Store; the zero value is memory-only.
type StoreConfig = store.Config

// OpenStore opens a measurement store, loading the snapshot at
// cfg.Path when one exists. The returned error is advisory: it
// describes a discarded (corrupt or incompatible) snapshot, and the
// Store is always usable.
func OpenStore(cfg StoreConfig) (*Store, error) { return store.Open(cfg) }

// NewLabWithStore returns a Lab whose measurements are cached in (and
// served from) st. Results are bit-identical to a store-free Lab.
func NewLabWithStore(opts RunOptions, st *Store) *Lab {
	return experiments.NewLabWithStore(opts, st)
}

// DefaultLab returns the shared, default-fidelity Lab.
func DefaultLab() *Lab { return experiments.DefaultLab() }

// FastRunOptions returns reduced-fidelity options (120k measured
// instructions) that preserve every qualitative result of the paper
// while building the lab several times faster.
func FastRunOptions() RunOptions {
	return RunOptions{Instructions: 120_000, WarmupInstructions: 30_000}
}

// Result and option types re-exported from the methodology layer.
type (
	// Characterization is the workloads × (machine, metric) matrix.
	Characterization = core.Characterization
	// Entry is one workload to characterize.
	Entry = core.Entry
	// Similarity is a fitted PCA + hierarchical clustering space.
	Similarity = core.Similarity
	// SimilarityOptions configure the similarity pipeline.
	SimilarityOptions = core.SimilarityOptions
	// SubsetResult is a representative subset read off a dendrogram.
	SubsetResult = core.SubsetResult
	// Profile describes one benchmark program.
	Profile = workloads.Profile
	// Suite identifies a benchmark collection.
	Suite = workloads.Suite
	// Machine is one simulated commercial system.
	Machine = machine.Machine
	// Workload couples a trace spec with its seed key and ILP.
	Workload = machine.Workload
)

// Benchmark suites of the study.
const (
	SpeedINT = workloads.SpeedINT
	RateINT  = workloads.RateINT
	SpeedFP  = workloads.SpeedFP
	RateFP   = workloads.RateFP
)

// Workload database accessors.
var (
	// AllProfiles returns every profile in the database.
	AllProfiles = workloads.All
	// CPU2017Profiles returns the 43 CPU2017 benchmarks (Table I order).
	CPU2017Profiles = workloads.CPU2017
	// CPU2006Profiles returns the 29 CPU2006 benchmarks.
	CPU2006Profiles = workloads.CPU2006
	// EmergingProfiles returns the EDA, graph, and database workloads.
	EmergingProfiles = workloads.Emerging
	// ProfileByName looks a profile up by its SPEC-style name.
	ProfileByName = workloads.ByName
	// ProfilesBySuite returns the profiles of one suite.
	ProfilesBySuite = workloads.BySuite
)

// Fleet returns the paper's seven Table IV machines.
var Fleet = machine.Fleet

// Characterize measures workload entries on a machine fleet.
var Characterize = core.Characterize

// DefaultSimilarityOptions returns the paper's analysis settings (all
// metrics, all machines, Ward linkage, Kaiser criterion).
var DefaultSimilarityOptions = core.DefaultSimilarityOptions

// The paper's experiments, one function per table/figure. See
// DESIGN.md section 4 for the index.
var (
	Table1 = experiments.Table1 // Table I: instruction mix and CPI
	Table2 = experiments.Table2 // Table II: per-suite metric ranges
	Fig1   = experiments.Fig1   // Figure 1: CPI stacks (rate benchmarks)
	Fig2   = experiments.Fig2   // Figure 2: SPECspeed INT dendrogram
	Fig3   = experiments.Fig3   // Figure 3: SPECspeed FP dendrogram
	Fig4   = experiments.Fig4   // Figure 4: SPECrate FP dendrogram
	Table5 = experiments.Table5 // Table V: 3-benchmark subsets
	Fig5   = experiments.Fig5   // Figure 5: INT subset validation
	Fig6   = experiments.Fig6   // Figure 6: FP subset validation
	Table6 = experiments.Table6 // Table VI: identified vs random subsets
	Fig7   = experiments.Fig7   // Figure 7: INT input-set similarity
	Fig8   = experiments.Fig8   // Figure 8: FP input-set similarity
	Table7 = experiments.Table7 // Table VII: representative input sets
	Fig9   = experiments.Fig9   // Figure 9: branch-behaviour scatter
	Fig10  = experiments.Fig10  // Figure 10: cache-behaviour scatters
	Table8 = experiments.Table8 // Table VIII: domain classification
	Fig11  = experiments.Fig11  // Figure 11: CPU2017 vs CPU2006 coverage
	Fig12  = experiments.Fig12  // Figure 12: power-space coverage
	Fig13  = experiments.Fig13  // Figure 13: emerging workloads
	Table9 = experiments.Table9 // Table IX: configuration sensitivity

	// RateSpeed is the Section IV-D rate-vs-speed comparison.
	RateSpeed = experiments.RateSpeed
	// RateINTDendrogram is the rate-INT dendrogram the paper omits
	// for space.
	RateINTDendrogram = experiments.RateINTDendrogram
)

// Ablations of the methodology's design choices (not in the paper):
// linkage method, PC-score weighting, dimensionality criterion, and
// subset size. See DESIGN.md.
var (
	AblateLinkage = experiments.AblateLinkage
	// Table9Extended classifies sensitivity over all seven hardware
	// structures, not just the paper's three.
	Table9Extended       = experiments.Table9Extended
	AblateScoreWeighting = experiments.AblateScoreWeighting
	AblatePCSelection    = experiments.AblatePCSelection
	SubsetSizeSweep      = experiments.SubsetSizeSweep
)

// Extensions beyond the paper's evaluation.
var (
	// RateScaling measures SPECrate-style multi-copy throughput
	// scaling under shared-LLC contention.
	RateScaling = experiments.RateScaling
	// RateSpeedTreeSimilarity quantifies how alike the rate and speed
	// dendrograms are (cophenetic correlation).
	RateSpeedTreeSimilarity = experiments.RateSpeedTreeSimilarity
	// MeasurementNoise quantifies the substrate's sampling noise,
	// validating the single-measurement methodology.
	MeasurementNoise = experiments.MeasurementNoise
)

// Rendering helpers for terminal output.
var (
	RenderStacks  = experiments.RenderStacks
	RenderScatter = experiments.RenderScatter
	RenderTable6  = experiments.RenderTable6
)

// ExperimentDescriptor names one experiment of the suite: stable id,
// title, kind, and a runner producing its JSON-serializable result.
type ExperimentDescriptor = experiments.Descriptor

// The experiment registry — the stable ids shared by cmd/spec17's
// -exp flag and the spec17d HTTP service.
var (
	// Experiments returns every experiment descriptor in
	// presentation order.
	Experiments = experiments.Registry
	// ExperimentIDs returns every experiment id in presentation order.
	ExperimentIDs = experiments.IDs
	// LookupExperiment resolves one experiment id.
	LookupExperiment = experiments.Lookup
	// BuildReport runs every experiment into one JSON-serializable
	// report.
	BuildReport = experiments.BuildReport
)
