package repro

// One benchmark per table and figure of the paper's evaluation; each
// regenerates the corresponding result from the shared fleet
// characterization (built once, on first use). Run with:
//
//	go test -bench=. -benchmem
//
// The first benchmark to run pays the one-time characterization cost;
// the per-iteration numbers then measure the analysis pipelines (PCA,
// clustering, validation, coverage geometry) themselves.

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/insight"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/telemetry"
)

var (
	benchLabOnce sync.Once
	benchLab     *Lab
)

// lab returns the shared benchmark lab at reduced (fast) fidelity —
// every qualitative result of the paper holds at this fidelity, and
// the bench suite stays runnable in seconds.
func lab(b *testing.B) *Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab = NewLab(FastRunOptions())
	})
	if _, err := benchLab.Characterization(); err != nil {
		b.Fatal(err)
	}
	return benchLab
}

// benchmarkCharacterize measures the fleet characterization fan-out
// itself (8 benchmarks × 7 machines) at a fixed worker count, so the
// serial/parallel pair below shows the speedup of running the
// per-machine measurements across goroutines.
func benchmarkCharacterize(b *testing.B, parallelism int) {
	fleet, err := Fleet()
	if err != nil {
		b.Fatal(err)
	}
	var entries []Entry
	for _, p := range CPU2017Profiles()[:8] {
		entries = append(entries, Entry{Label: p.Name, Workload: p.Workload()})
	}
	opts := RunOptions{Instructions: 20_000, WarmupInstructions: 4_000, Parallelism: parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Characterize(context.Background(), entries, fleet, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeSerial runs every (workload, machine)
// measurement on one goroutine.
func BenchmarkCharacterizeSerial(b *testing.B) { benchmarkCharacterize(b, 1) }

// BenchmarkCharacterizeParallel fans the measurements out across
// GOMAXPROCS workers — the Lab's default. Compare with
// BenchmarkCharacterizeSerial for the fleet-parallelism speedup.
func BenchmarkCharacterizeParallel(b *testing.B) { benchmarkCharacterize(b, 0) }

func BenchmarkTable1InstrMix(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table1(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2MetricRanges(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table2(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1CPIStacks(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Fig1(l)
		if err != nil {
			b.Fatal(err)
		}
		_ = RenderStacks(rows, 60)
	}
}

func BenchmarkFig2DendrogramSpeedINT(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig2(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3DendrogramSpeedFP(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig3(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4DendrogramRateFP(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig4(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Subsets(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table5(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5ValidateINT(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig5(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ValidateFP(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig6(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6RandomSubsets(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table6(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7InputSetsINT(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig7(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8InputSetsFP(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig8(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7RepresentativeInputs(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table7(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRateSpeedCompare(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RateSpeed(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9BranchScatter(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig9(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10CacheScatter(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fig10(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8Domains(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table8(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11CPU2006Coverage(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fig11(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12PowerScatter(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fig12(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13EmergingWorkloads(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig13(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable9Sensitivity(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table9(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLinkage(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AblateLinkage(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetSizeSweep(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SubsetSizeSweep(l, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRateScaling(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RateScaling(l, []string{"505.mcf_r"}, []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStoreHitFastPathAllocs guards the tracing-disabled contract of
// the observability layer: a warm store hit under a span-less context
// performs no telemetry allocations. The bound covers only the path's
// pre-existing costs — the key's string identity (itoa + concat) and
// GetOrCompute's typed-closure wrapper; a span, attr slice, or
// timestamp boxed on the untraced hit path would push it over.
func TestStoreHitFastPathAllocs(t *testing.T) {
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	key := store.Key{Machine: "m", Workload: "w", Instructions: 400_000, Content: "deadbeef"}
	st.Put(key, &machine.RawCounts{})
	ctx := context.Background()
	compute := func(context.Context) (*machine.RawCounts, error) {
		panic("compute called on a warm hit")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := st.GetOrCompute(ctx, key, compute); err != nil {
			panic(err)
		}
	})
	if allocs > 3 {
		t.Errorf("warm store hit allocates %.1f objects/op, want <= 3 (key id: itoa + concat, closure wrapper)", allocs)
	}
}

// TestStoreHitFastPathAllocsWithInsight extends the same contract to
// the insight plane: drift scanning and metric sampling run entirely
// off the request path (a ticker goroutine and store.Range), so a
// store with a live plane attached — even one that has already
// scanned — must keep the identical warm-hit allocation bound. A
// future per-Get drift hook would trip this immediately.
func TestStoreHitFastPathAllocsWithInsight(t *testing.T) {
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plane := insight.New(insight.Config{
		Metrics:  metrics.NewRegistry(),
		Store:    st,
		Log:      telemetry.NewLogger(io.Discard, telemetry.LevelError+1),
		Interval: time.Hour,
	})
	defer plane.Stop()
	key := store.Key{Machine: "m", Workload: "w", Instructions: 400_000, Content: "deadbeef"}
	st.Put(key, &machine.RawCounts{})
	plane.Tick() // sample the registry and scan the store once
	ctx := context.Background()
	compute := func(context.Context) (*machine.RawCounts, error) {
		panic("compute called on a warm hit")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := st.GetOrCompute(ctx, key, compute); err != nil {
			panic(err)
		}
	})
	if allocs > 3 {
		t.Errorf("warm store hit with insight attached allocates %.1f objects/op, want <= 3 (same bound as without)", allocs)
	}
}

// BenchmarkStoreHit measures the warm-hit path the daemon leans on
// once its store is populated. Run with -benchmem to watch the
// allocation guard's numbers directly.
func BenchmarkStoreHit(b *testing.B) {
	st, err := store.Open(store.Config{})
	if err != nil {
		b.Fatal(err)
	}
	key := store.Key{Machine: "m", Workload: "w", Instructions: 400_000, Content: "deadbeef"}
	st.Put(key, &machine.RawCounts{})
	ctx := context.Background()
	compute := func(context.Context) (*machine.RawCounts, error) {
		panic("compute called on a warm hit")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.GetOrCompute(ctx, key, compute); err != nil {
			b.Fatal(err)
		}
	}
}
