// Quickstart: characterize a handful of SPEC CPU2017 benchmarks on
// the simulated seven-machine fleet, run the paper's PCA + clustering
// similarity pipeline on them, and print the dendrogram and a
// 3-benchmark representative subset.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// Pick six behaviourally diverse benchmarks from the database.
	names := []string{
		"505.mcf_r",       // memory-bound pointer chaser
		"541.leela_r",     // branch-misprediction bound
		"525.x264_r",      // SIMD-heavy, cache-resident
		"549.fotonik3d_r", // highest L1D miss rate in the suite
		"508.namd_r",      // compute-bound floating point
		"523.xalancbmk_r", // branchy C++ document processing
	}
	var entries []repro.Entry
	for _, n := range names {
		p, err := repro.ProfileByName(n)
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, repro.Entry{Label: p.Name, Workload: p.Workload()})
	}

	// Measure them on the paper's seven Table IV machines.
	fleet, err := repro.Fleet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measuring %d benchmarks on %d machines...\n\n", len(entries), len(fleet))
	char, err := repro.Characterize(context.Background(), entries, fleet, repro.FastRunOptions())
	if err != nil {
		log.Fatal(err)
	}

	// PCA (Kaiser criterion) + Ward hierarchical clustering.
	sim, err := char.Similarity(repro.DefaultSimilarityOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retained %d principal components covering %.0f%% of variance\n\n",
		sim.NumPCs, sim.PCA.CumVarExplained[sim.NumPCs-1]*100)
	fmt.Println(sim.Dendrogram.Render(60))

	subset := sim.Subset(3)
	fmt.Printf("most distinct benchmark: %s\n", sim.MostDistinct())
	fmt.Printf("3-benchmark representative subset: %s\n",
		strings.Join(subset.Representatives, ", "))
}
