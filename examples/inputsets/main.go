// Inputsets: reproduce the paper's Section IV-C and IV-D analyses —
// how similar are the multiple reference inputs of each CPU2017
// benchmark (Figures 7/8), which input represents each benchmark best
// (Table VII), and how far apart are the rate and speed versions of
// each benchmark family?
//
// Run with:
//
//	go run ./examples/inputsets
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	lab := repro.NewLab(repro.FastRunOptions())

	fmt.Println("clustering the INT benchmarks' input sets (Figure 7)...")
	res, err := repro.Fig7(lab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Similarity.Dendrogram.Render(60))
	fmt.Println("input-set cohesion (well below 1 = inputs of one benchmark cluster together):")
	for bench, coh := range res.Cohesion {
		fmt.Printf("  %-18s %.2f\n", bench, coh)
	}

	fmt.Println("\nmost representative input set per benchmark (Table VII):")
	reps, err := repro.Table7(lab)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reps {
		fmt.Printf("  %-18s input set %d\n", r.Benchmark, r.Input)
	}

	fmt.Println("\nrate vs speed similarity (Section IV-D, sorted by distance):")
	pairs, err := repro.RateSpeed(lab)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		mark := ""
		if p.Divergent {
			mark = "  <- divergent (use both versions)"
		}
		fmt.Printf("  %-12s %6.2f%s\n", p.Base, p.Distance, mark)
	}
}
