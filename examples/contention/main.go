// Contention: go beyond the paper's single-copy measurements and run
// benchmarks the way the real SPECrate harness does — as multiple
// concurrent copies sharing the last-level cache. Memory-bound
// benchmarks (mcf) lose per-copy throughput as their combined working
// sets overflow the shared LLC; cache-resident benchmarks (exchange2)
// scale linearly.
//
// Run with:
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	lab := repro.NewLab(repro.FastRunOptions())
	fmt.Println("running 1-8 concurrent copies on the Skylake model (shared 8 MiB LLC)...")
	rows, err := repro.RateScaling(lab, nil, []int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-18s %6s %12s %11s %14s\n",
		"benchmark", "copies", "throughput", "efficiency", "L3 MPKI/copy")
	for _, r := range rows {
		fmt.Printf("%-18s %6d %12.3f %10.0f%% %14.2f\n",
			r.Benchmark, r.Copies, r.Throughput, r.Efficiency*100, r.L3MPKIPerCopy)
	}
	fmt.Println("\nmcf's per-copy LLC misses multiply as copies contend for the shared")
	fmt.Println("cache, so its throughput scales sub-linearly; exchange2 and x264 fit")
	fmt.Println("their private caches and scale almost perfectly.")
}
