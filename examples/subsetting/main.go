// Subsetting: reproduce the paper's core result end to end — derive
// the representative 3-benchmark subsets of all four CPU2017
// sub-suites (Table V) and validate them against the synthetic
// commercial-system results database (Figures 5/6, Table VI),
// including the comparison against two random subsets.
//
// Run with:
//
//	go run ./examples/subsetting
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	lab := repro.NewLab(repro.FastRunOptions())

	fmt.Println("deriving Table V subsets (this builds the fleet characterization)...")
	subsets, err := repro.Table5(lab)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range subsets {
		fmt.Printf("\n%s\n", row.Suite)
		fmt.Printf("  subset: %s\n", strings.Join(row.Subset, ", "))
		fmt.Printf("  simulation-time reduction: %.1fx\n", row.SimTimeReduction)
	}

	fmt.Println("\nvalidating against synthetic commercial-system scores (Table VI)...")
	rows, err := repro.Table6(lab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(repro.RenderTable6(rows))
	fmt.Println("\nThe identified subsets predict the full-suite geometric-mean")
	fmt.Println("score far better than arbitrary subsets — the paper's headline")
	fmt.Println("claim that one third of the suite suffices (>=93% accuracy).")
}
