// Example serve: run the spec17d characterization service in-process
// twice against one measurement-store snapshot, and show both caches
// doing their jobs: the in-process result cache (the repeated request
// is instant) and the persistent store (the restarted daemon's first
// uncached request is a warm start — it re-runs the experiment's
// analysis but simulates nothing).
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/store"
)

// fidelity keeps the one-time fleet characterization quick; both
// experiments and the repeat share one Lab and one cache.
const fidelity = "instructions=2000"

func main() {
	dir, err := os.MkdirTemp("", "spec17-serve-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapshot := filepath.Join(dir, "measurements.json")

	fmt.Println("--- cold daemon (empty store) ---")
	cold := runDaemon(snapshot)
	fmt.Println("\n--- warm daemon (restarted on the persisted store) ---")
	warm := runDaemon(snapshot)

	fmt.Printf("\nwarm start: first /v1/experiments request %v -> %v (%.0fx faster), store misses %g -> %g\n",
		cold.firstLatency.Round(time.Millisecond),
		warm.firstLatency.Round(time.Millisecond),
		float64(cold.firstLatency)/float64(warm.firstLatency),
		cold.storeMisses, warm.storeMisses)
}

type daemonStats struct {
	firstLatency time.Duration
	storeMisses  float64
}

// runDaemon boots a server backed by the snapshot, queries two
// experiments plus a repeat, persists the store, and shuts down —
// one full daemon lifecycle.
func runDaemon(snapshot string) daemonStats {
	reg := metrics.NewRegistry()
	st, err := store.Open(store.Config{Path: snapshot, Metrics: reg})
	if err != nil {
		log.Printf("warning: %v", err)
	}
	s := server.New(server.Config{Store: st, Metrics: reg})

	// Random port: the kernel picks one, the example prints it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := s.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	base := "http://" + l.Addr().String()
	fmt.Printf("spec17d serving on %s (store: %d records)\n", base, st.Len())

	var stats daemonStats
	for i, q := range []string{
		"/v1/experiments/table2?" + fidelity,
		"/v1/experiments/ratespeed?" + fidelity,
		"/v1/experiments/table2?" + fidelity, // repeat: served from result cache
	} {
		start := time.Now()
		cached, title := fetch(base + q)
		elapsed := time.Since(start)
		if i == 0 {
			stats.firstLatency = elapsed
		}
		fmt.Printf("GET %-44s %8s cached=%v (%s)\n",
			q, elapsed.Round(time.Millisecond), cached, title)
	}

	// Batch streaming: several experiments over one connection, each
	// result arriving as its own NDJSON line the moment it completes.
	batch := "/v1/batch?experiments=table2,ratespeed,table7&" + fidelity
	fmt.Printf("GET %s\n", batch)
	streamBatch(base + batch)

	// Interactive traffic: ask for an experiment with engine=auto. The
	// first answer is served by the closed-form analytic engine (no
	// simulation, milliseconds) while a background worker re-measures
	// exactly; polling the same URL flips to the exact tier, and the
	// flipped answer is byte-identical to a direct engine=exact request.
	interactiveTraffic(base)

	stats.storeMisses = metric(base, "spec17_store_misses_total")
	fmt.Printf("store: hits %g, misses (simulations) %g, sched dedup hits %g\n",
		metric(base, "spec17_store_hits_total"), stats.storeMisses,
		metric(base, "spec17_sched_dedup_hits_total"))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := st.Save(); err != nil {
		log.Fatal(err)
	}
	return stats
}

// interactiveTraffic demonstrates the auto engine tier: analytic
// first answer, background exact upgrade, converged result identical
// to a direct exact request.
func interactiveTraffic(base string) {
	url := base + "/v1/experiments/fig9?" + fidelity
	type engineResult struct {
		Engine         string          `json:"engine"`
		UpgradePending bool            `json:"upgrade_pending"`
		Cached         bool            `json:"cached"`
		Result         json.RawMessage `json:"result"`
	}
	fetchEngine := func(u string) (engineResult, time.Duration) {
		start := time.Now()
		resp, err := http.Get(u)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET %s: status %d", u, resp.StatusCode)
		}
		var er engineResult
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			log.Fatal(err)
		}
		return er, time.Since(start)
	}

	first, elapsed := fetchEngine(url + "&engine=auto")
	fmt.Printf("GET /v1/experiments/fig9&engine=auto      %8s engine=%s upgrade_pending=%v\n",
		elapsed.Round(time.Millisecond), first.Engine, first.UpgradePending)

	polls := 0
	deadline := time.Now().Add(60 * time.Second)
	upgraded := first
	for upgraded.Engine != "exact" {
		if time.Now().After(deadline) {
			log.Fatalf("auto never upgraded to exact (still %s after %d polls)", upgraded.Engine, polls)
		}
		time.Sleep(100 * time.Millisecond)
		upgraded, elapsed = fetchEngine(url + "&engine=auto")
		polls++
	}
	fmt.Printf("GET /v1/experiments/fig9&engine=auto      %8s engine=%s after %d polls (background upgrade landed)\n",
		elapsed.Round(time.Millisecond), upgraded.Engine, polls)

	direct, elapsed := fetchEngine(url + "&engine=exact")
	same := string(direct.Result) == string(upgraded.Result)
	fmt.Printf("GET /v1/experiments/fig9&engine=exact     %8s cached=%v identical-to-upgraded=%v\n",
		elapsed.Round(time.Millisecond), direct.Cached, same)
	if !same {
		log.Fatal("auto-upgraded result differs from direct exact result")
	}
}

// streamBatch reads a batch's NDJSON stream line by line, printing
// each experiment as it lands.
func streamBatch(url string) {
	start := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // result lines can be large
	for sc.Scan() {
		var line struct {
			ID        string `json:"id"`
			Status    string `json:"status"`
			Cached    bool   `json:"cached"`
			ElapsedMS int64  `json:"elapsed_ms"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		fmt.Printf("  %8s  %-12s %s cached=%v (item %dms)\n",
			time.Since(start).Round(time.Millisecond), line.ID, line.Status, line.Cached, line.ElapsedMS)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// fetch GETs one experiment and returns its cached flag and title.
func fetch(url string) (cached bool, title string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var body struct {
		Title  string `json:"title"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Fatal(err)
	}
	return body.Cached, body.Title
}

// metric scrapes one unlabelled sample from /metrics.
func metric(base, name string) float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad metric line %q: %v\n", line, err)
				os.Exit(1)
			}
			return v
		}
	}
	return 0
}
