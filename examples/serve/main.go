// Example serve: run the spec17d characterization service in-process,
// query two experiments (plus a repeat), and show the cache doing its
// job via the /metrics deltas.
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

func main() {
	s := server.New(server.Config{})

	// Random port: the kernel picks one, the example prints it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := s.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	base := "http://" + l.Addr().String()
	fmt.Printf("spec17d serving on %s\n\n", base)

	// Tiny fidelity keeps the one-time fleet characterization quick;
	// both experiments and the repeat share one Lab and one cache.
	const fidelity = "instructions=2000"
	hits0 := metric(base, "spec17d_cache_hits_total")

	for _, q := range []string{
		"/v1/experiments/table2?" + fidelity,
		"/v1/experiments/ratespeed?" + fidelity,
		"/v1/experiments/table2?" + fidelity, // repeat: served from cache
	} {
		start := time.Now()
		cached, title := fetch(base + q)
		fmt.Printf("GET %-44s %8s cached=%v (%s)\n",
			q, time.Since(start).Round(time.Millisecond), cached, title)
	}

	hits1 := metric(base, "spec17d_cache_hits_total")
	fmt.Printf("\nspec17d_cache_hits_total: %g -> %g (delta %g)\n", hits0, hits1, hits1-hits0)
	fmt.Printf("spec17d_computations_total: %g\n", metric(base, "spec17d_computations_total"))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}

// fetch GETs one experiment and returns its cached flag and title.
func fetch(url string) (cached bool, title string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var body struct {
		Title  string `json:"title"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Fatal(err)
	}
	return body.Cached, body.Title
}

// metric scrapes one unlabelled sample from /metrics.
func metric(base, name string) float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad metric line %q: %v\n", line, err)
				os.Exit(1)
			}
			return v
		}
	}
	return 0
}
