// Balance: reproduce the paper's Section V — does CPU2017 broaden the
// performance horizon? Compares the CPU2017 workload space against
// CPU2006 (Figure 11), against the power spectrum (Figure 12), and
// against emerging EDA, graph-analytics, and database workloads
// (Figure 13), then prints the Table IX configuration-sensitivity
// classification.
//
// Run with:
//
//	go run ./examples/balance
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	lab := repro.NewLab(repro.FastRunOptions())

	fmt.Println("CPU2017 vs CPU2006 coverage (Figure 11)...")
	planes, uncovered, err := repro.Fig11(lab)
	if err != nil {
		log.Fatal(err)
	}
	for _, pl := range planes {
		fmt.Printf("  %-8s hull area: 2017 %.0f vs 2006 %.0f; 2017 points outside 2006 hull: %.0f%%\n",
			pl.Plane, pl.Area2017, pl.Area2006, pl.FracOutside*100)
	}
	fmt.Printf("  CPU2006 programs whose behaviour CPU2017 does not cover: %s\n",
		strings.Join(uncovered, ", "))

	fmt.Println("\npower spectrum (Figure 12)...")
	cov, _, err := repro.Fig12(lab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  power-space hull area: 2017 %.1f vs 2006 %.1f (CPU2017 is the broader suite)\n",
		cov.Area2017, cov.Area2006)

	fmt.Println("\nemerging workloads (Figure 13)...")
	em, err := repro.Fig13(lab)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range repro.EmergingProfiles() {
		fmt.Printf("  %-12s nearest CPU2017 benchmark: %-18s (normalized distance %.2f)\n",
			p.Name, em.NearestCPU2017[p.Name], em.NormDistance[p.Name])
	}

	fmt.Println("\nconfiguration sensitivity (Table IX)...")
	tables, err := repro.Table9(lab)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Printf("  %-18s High: %s\n", t.Structure, strings.Join(t.High, ", "))
	}
}
