# Development / CI entry points. `make ci` is what a checkin must pass.
#
# The full test suite under the race detector rebuilds fleet
# characterizations, which the race runtime slows by ~20x (minutes per
# Lab); `ci` therefore runs -race on the concurrent packages (server,
# metrics, core, cluster, stats) where it has teeth, and `race-all`
# remains available for the exhaustive run.

GO ?= go
RACE_PKGS ?= ./internal/server/... ./internal/metrics/... ./internal/core/... \
             ./internal/cluster/... ./internal/stats/... ./internal/store/... \
             ./internal/sched/... ./internal/telemetry/... ./internal/admission/... \
             ./internal/engine/... ./internal/jobs/... ./internal/insight/...

.PHONY: ci fmt-check vet build test race race-all bench bench-snapshot bench-gate smoke clean

ci: fmt-check vet build test race

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-snapshot measures the key performance paths (characterization
# fan-out, store-hit, both measurement engines over the full registry)
# and writes the next committed BENCH_<n>.json. bench-gate re-measures
# and fails on >30% regression against the last snapshot, or if the
# analytic engine's registry speedup drops below its contractual 50x.
bench-snapshot:
	$(GO) run ./scripts/benchsnap

bench-gate:
	$(GO) run ./scripts/bench_gate

# smoke boots a real spec17d binary and walks the observability
# surface: healthz, status, metrics, one traced report, and the
# report's trace in /v1/traces.
smoke:
	$(GO) run ./scripts/smoke

clean:
	$(GO) clean ./...
